#ifndef MDSEQ_TS_FRM_H_
#define MDSEQ_TS_FRM_H_

#include <cstddef>
#include <vector>

#include "core/database.h"
#include "geom/sequence.h"

namespace mdseq {

/// FRM subsequence matching (Faloutsos, Ranganathan & Manolopoulos, SIGMOD
/// 1994) — the 1-d related-work system whose partitioning strategy the
/// paper adapts (Section 2): a sliding window over each stored series maps
/// every position to the first few DFT coefficients of its window; the
/// resulting low-dimensional *feature trail* is partitioned into MBRs
/// (using the same marginal-cost algorithm) and indexed in an R-tree
/// variant. A query of length >= w is cut into disjoint windows, each
/// mapped to a feature point, and searched with threshold eps/sqrt(p)
/// (PrefixSearch): since window feature distance lower-bounds window
/// Euclidean distance (Parseval) and some query window must be within
/// eps/sqrt(p) of the corresponding data window whenever the whole query
/// matches within eps, the candidate set has no false dismissals.
///
/// Distances are root-sum-square over the aligned points (the FRM
/// formulation), not this paper's mean distance.
class FrmIndex {
 public:
  /// `window` is the sliding-window size w; `num_coefficients` DFT
  /// coefficients are kept per window (feature dimensionality is twice
  /// that).
  FrmIndex(size_t window, size_t num_coefficients);

  /// Adds a 1-d series with at least `window` points; returns its id.
  size_t Add(Sequence series);

  /// Candidate series ids for "some subsequence of the stored series is
  /// within Euclidean distance `epsilon` of `query`", ascending, no false
  /// dismissals. `query` must be 1-d with `query.size() >= window`.
  std::vector<size_t> SearchCandidates(SequenceView query,
                                       double epsilon) const;

  /// Verified matches: candidate ids whose best alignment really is within
  /// `epsilon` (root-sum-square over `query.size()` points).
  std::vector<size_t> Search(SequenceView query, double epsilon) const;

  size_t size() const { return series_.size(); }

  /// Number of feature-trail MBRs indexed (diagnostics).
  size_t total_mbrs() const { return database_.total_mbrs(); }

 private:
  size_t window_;
  size_t num_coefficients_;
  /// The feature trails are stored as a SequenceDatabase: same MCOST
  /// partitioning + R*-tree machinery, searched at the MBR level.
  SequenceDatabase database_;
  std::vector<Sequence> series_;
};

/// Minimum root-sum-square distance of `query` over all alignments inside
/// `data` (both 1-d, `query.size() <= data.size()`).
double MinSubsequenceDistance(SequenceView query, SequenceView data);

}  // namespace mdseq

#endif  // MDSEQ_TS_FRM_H_
