#include "ts/wavelet.h"

#include <cmath>

#include "util/check.h"

namespace mdseq {

namespace {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

}  // namespace

std::vector<double> HaarTransform(const std::vector<double>& series) {
  MDSEQ_CHECK(IsPowerOfTwo(series.size()));
  std::vector<double> coefficients = series;
  std::vector<double> scratch(series.size());
  // Each pass halves the working length: the first half receives the
  // scaled pairwise averages, the second half the scaled differences.
  // Ordering: [approximation | detail_level_log2(n) ... detail_level_1],
  // i.e. coefficients[0] is the (scaled) global average.
  for (size_t length = series.size(); length > 1; length /= 2) {
    const size_t half = length / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[i] =
          (coefficients[2 * i] + coefficients[2 * i + 1]) * kInvSqrt2;
      scratch[half + i] =
          (coefficients[2 * i] - coefficients[2 * i + 1]) * kInvSqrt2;
    }
    for (size_t i = 0; i < length; ++i) coefficients[i] = scratch[i];
  }
  return coefficients;
}

std::vector<double> InverseHaarTransform(
    const std::vector<double>& coefficients) {
  MDSEQ_CHECK(IsPowerOfTwo(coefficients.size()));
  std::vector<double> series = coefficients;
  std::vector<double> scratch(coefficients.size());
  for (size_t length = 2; length <= series.size(); length *= 2) {
    const size_t half = length / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[2 * i] = (series[i] + series[half + i]) * kInvSqrt2;
      scratch[2 * i + 1] = (series[i] - series[half + i]) * kInvSqrt2;
    }
    for (size_t i = 0; i < length; ++i) series[i] = scratch[i];
  }
  return series;
}

Point HaarFeature(SequenceView series, size_t num_coefficients) {
  MDSEQ_CHECK(series.dim() == 1);
  MDSEQ_CHECK(num_coefficients >= 1);
  MDSEQ_CHECK(num_coefficients <= series.size());
  std::vector<double> values(series.size());
  for (size_t i = 0; i < series.size(); ++i) values[i] = series[i][0];
  const std::vector<double> coefficients = HaarTransform(values);
  return Point(coefficients.begin(),
               coefficients.begin() +
                   static_cast<ptrdiff_t>(num_coefficients));
}

}  // namespace mdseq
