#include "ts/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace mdseq {

void SymmetricEigen(const std::vector<double>& matrix, size_t n,
                    std::vector<double>* eigenvalues,
                    std::vector<Point>* eigenvectors) {
  MDSEQ_CHECK(n >= 1);
  MDSEQ_CHECK(matrix.size() == n * n);
  MDSEQ_CHECK(eigenvalues != nullptr && eigenvectors != nullptr);

  std::vector<double> a = matrix;  // working copy, stays symmetric
  // v starts as identity; accumulates rotations (columns = eigenvectors).
  std::vector<double> v(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  // Cyclic Jacobi sweeps until the off-diagonal mass is negligible.
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
    }
    if (off < 1e-24) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-18) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q of `a`.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        // Accumulate the rotation into v.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return a[x * n + x] > a[y * n + y];
  });
  eigenvalues->resize(n);
  eigenvectors->assign(n, Point(n, 0.0));
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t column = order[rank];
    (*eigenvalues)[rank] = a[column * n + column];
    for (size_t k = 0; k < n; ++k) {
      (*eigenvectors)[rank][k] = v[k * n + column];
    }
  }
}

PcaModel PcaModel::Fit(const std::vector<Sequence>& corpus,
                       size_t target_dim) {
  MDSEQ_CHECK(!corpus.empty());
  const size_t dim = corpus.front().dim();
  MDSEQ_CHECK(target_dim >= 1 && target_dim <= dim);

  // Mean over every point of every sequence.
  PcaModel model;
  model.mean_.assign(dim, 0.0);
  size_t count = 0;
  for (const Sequence& seq : corpus) {
    MDSEQ_CHECK(seq.dim() == dim);
    for (size_t i = 0; i < seq.size(); ++i) {
      for (size_t k = 0; k < dim; ++k) model.mean_[k] += seq[i][k];
      ++count;
    }
  }
  MDSEQ_CHECK(count >= 1);
  for (double& m : model.mean_) m /= static_cast<double>(count);

  // Covariance matrix.
  std::vector<double> covariance(dim * dim, 0.0);
  for (const Sequence& seq : corpus) {
    for (size_t i = 0; i < seq.size(); ++i) {
      for (size_t r = 0; r < dim; ++r) {
        const double dr = seq[i][r] - model.mean_[r];
        for (size_t c = r; c < dim; ++c) {
          covariance[r * dim + c] += dr * (seq[i][c] - model.mean_[c]);
        }
      }
    }
  }
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = r; c < dim; ++c) {
      covariance[r * dim + c] /= static_cast<double>(count);
      covariance[c * dim + r] = covariance[r * dim + c];
    }
  }

  std::vector<double> eigenvalues;
  std::vector<Point> eigenvectors;
  SymmetricEigen(covariance, dim, &eigenvalues, &eigenvectors);
  model.components_.assign(eigenvectors.begin(),
                           eigenvectors.begin() +
                               static_cast<ptrdiff_t>(target_dim));
  model.explained_variance_.assign(
      eigenvalues.begin(),
      eigenvalues.begin() + static_cast<ptrdiff_t>(target_dim));
  return model;
}

Point PcaModel::Project(PointView p) const {
  MDSEQ_CHECK(p.size() == input_dim());
  Point out(output_dim(), 0.0);
  for (size_t c = 0; c < components_.size(); ++c) {
    double dot = 0.0;
    for (size_t k = 0; k < p.size(); ++k) {
      dot += components_[c][k] * (p[k] - mean_[k]);
    }
    out[c] = dot;
  }
  return out;
}

Sequence PcaModel::ProjectSequence(SequenceView sequence) const {
  Sequence out(output_dim());
  for (size_t i = 0; i < sequence.size(); ++i) {
    out.Append(Project(sequence[i]));
  }
  return out;
}

Point PcaModel::Reconstruct(PointView reduced) const {
  MDSEQ_CHECK(reduced.size() == output_dim());
  Point out = mean_;
  for (size_t c = 0; c < components_.size(); ++c) {
    for (size_t k = 0; k < out.size(); ++k) {
      out[k] += reduced[c] * components_[c][k];
    }
  }
  return out;
}

}  // namespace mdseq
