#include "ts/whole_matching.h"

#include <algorithm>
#include <cmath>

#include "ts/dft.h"
#include "ts/paa.h"
#include "ts/wavelet.h"
#include "util/check.h"

namespace mdseq {

double WholeSeriesDistance(SequenceView a, SequenceView b) {
  MDSEQ_CHECK(a.dim() == 1 && b.dim() == 1);
  MDSEQ_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i][0] - b[i][0];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

WholeMatchingIndex::WholeMatchingIndex(size_t series_length,
                                       size_t num_coefficients,
                                       Feature feature)
    : series_length_(series_length),
      num_coefficients_(num_coefficients),
      feature_(feature),
      tree_(feature == Feature::kDft ? 2 * num_coefficients
                                     : num_coefficients) {
  MDSEQ_CHECK(series_length >= 1);
  MDSEQ_CHECK(num_coefficients >= 1);
  MDSEQ_CHECK(num_coefficients <= series_length);
  if (feature == Feature::kHaar) {
    MDSEQ_CHECK((series_length & (series_length - 1)) == 0);
  }
  if (feature == Feature::kPaa) {
    MDSEQ_CHECK(series_length % num_coefficients == 0);
  }
}

Point WholeMatchingIndex::FeatureOf(SequenceView series) const {
  switch (feature_) {
    case Feature::kDft:
      return DftFeature(series, num_coefficients_);
    case Feature::kHaar:
      return HaarFeature(series, num_coefficients_);
    case Feature::kPaa: {
      // Scale by sqrt(frame) so plain Euclidean distance on the stored
      // features is exactly PaaDistance (a valid lower bound).
      Point feature = PaaFeature(series, num_coefficients_);
      const double scale = std::sqrt(
          static_cast<double>(series_length_ / num_coefficients_));
      for (double& v : feature) v *= scale;
      return feature;
    }
  }
  return Point();  // unreachable
}

size_t WholeMatchingIndex::Add(Sequence series) {
  MDSEQ_CHECK(series.dim() == 1);
  MDSEQ_CHECK(series.size() == series_length_);
  const size_t id = series_.size();
  tree_.Insert(Mbr::FromPoint(FeatureOf(series.View())), id);
  series_.push_back(std::move(series));
  return id;
}

std::vector<size_t> WholeMatchingIndex::SearchCandidates(
    SequenceView query, double epsilon) const {
  MDSEQ_CHECK(query.dim() == 1);
  MDSEQ_CHECK(query.size() == series_length_);
  MDSEQ_CHECK(epsilon >= 0.0);
  std::vector<uint64_t> hits;
  tree_.RangeSearch(Mbr::FromPoint(FeatureOf(query)), epsilon, &hits);
  std::vector<size_t> candidates(hits.begin(), hits.end());
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

std::vector<size_t> WholeMatchingIndex::Search(SequenceView query,
                                               double epsilon) const {
  std::vector<size_t> results;
  for (size_t id : SearchCandidates(query, epsilon)) {
    if (WholeSeriesDistance(query, series_[id].View()) <= epsilon) {
      results.push_back(id);
    }
  }
  return results;
}

}  // namespace mdseq
