#include "ts/transforms.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace mdseq {

Sequence MovingAverage(SequenceView seq, size_t w) {
  MDSEQ_CHECK(w >= 1);
  MDSEQ_CHECK(seq.size() >= w);
  const size_t dim = seq.dim();
  if (w == 1) return seq.Materialize();  // exact identity, no rounding
  Sequence out(dim);
  // Running element-wise sum over the window.
  std::vector<double> sum(dim, 0.0);
  for (size_t i = 0; i < w; ++i) {
    for (size_t k = 0; k < dim; ++k) sum[k] += seq[i][k];
  }
  std::vector<double> mean(dim);
  const double inv = 1.0 / static_cast<double>(w);
  for (size_t i = 0;; ++i) {
    for (size_t k = 0; k < dim; ++k) mean[k] = sum[k] * inv;
    out.Append(mean);
    if (i + w >= seq.size()) break;
    for (size_t k = 0; k < dim; ++k) {
      sum[k] += seq[i + w][k] - seq[i][k];
    }
  }
  return out;
}

Sequence Reverse(SequenceView seq) {
  Sequence out(seq.dim());
  for (size_t i = seq.size(); i-- > 0;) out.Append(seq[i]);
  return out;
}

Sequence Shift(SequenceView seq, PointView offset) {
  MDSEQ_CHECK(offset.size() == seq.dim());
  Sequence out(seq.dim());
  std::vector<double> p(seq.dim());
  for (size_t i = 0; i < seq.size(); ++i) {
    for (size_t k = 0; k < seq.dim(); ++k) p[k] = seq[i][k] + offset[k];
    out.Append(p);
  }
  return out;
}

Sequence Scale(SequenceView seq, double factor) {
  Sequence out(seq.dim());
  std::vector<double> p(seq.dim());
  for (size_t i = 0; i < seq.size(); ++i) {
    for (size_t k = 0; k < seq.dim(); ++k) p[k] = seq[i][k] * factor;
    out.Append(p);
  }
  return out;
}

Sequence ZNormalize(SequenceView seq) {
  MDSEQ_CHECK(!seq.empty());
  const size_t dim = seq.dim();
  const double n = static_cast<double>(seq.size());
  std::vector<double> mean(dim, 0.0);
  for (size_t i = 0; i < seq.size(); ++i) {
    for (size_t k = 0; k < dim; ++k) mean[k] += seq[i][k];
  }
  for (size_t k = 0; k < dim; ++k) mean[k] /= n;
  std::vector<double> stddev(dim, 0.0);
  for (size_t i = 0; i < seq.size(); ++i) {
    for (size_t k = 0; k < dim; ++k) {
      const double d = seq[i][k] - mean[k];
      stddev[k] += d * d;
    }
  }
  for (size_t k = 0; k < dim; ++k) stddev[k] = std::sqrt(stddev[k] / n);

  Sequence out(dim);
  std::vector<double> p(dim);
  for (size_t i = 0; i < seq.size(); ++i) {
    for (size_t k = 0; k < dim; ++k) {
      // A (numerically) constant dimension is centered but not divided;
      // the threshold absorbs the rounding noise of the mean computation.
      const double effectively_constant =
          1e-12 * std::max(1.0, std::abs(mean[k]));
      p[k] = stddev[k] > effectively_constant
                 ? (seq[i][k] - mean[k]) / stddev[k]
                 : 0.0;
    }
    out.Append(p);
  }
  return out;
}

}  // namespace mdseq
