#ifndef MDSEQ_TS_TRANSFORMS_H_
#define MDSEQ_TS_TRANSFORMS_H_

#include <cstddef>

#include "geom/sequence.h"

namespace mdseq {

/// Sequence transformations from the related work (Rafiei et al.'s "safe
/// linear transformations", Section 2), generalized to multidimensional
/// sequences. They are useful for issuing transformed queries ("similar
/// after smoothing", "similar when played backwards") against the same
/// database.

/// `w`-point moving average: point `i` of the result is the element-wise
/// mean of points `[i, i+w)`. Requires `w >= 1` and `seq.size() >= w`;
/// the result has `seq.size() - w + 1` points.
Sequence MovingAverage(SequenceView seq, size_t w);

/// The sequence with its points in reverse order.
Sequence Reverse(SequenceView seq);

/// Shifts every point by `offset` (element-wise addition;
/// `offset.size() == seq.dim()`).
Sequence Shift(SequenceView seq, PointView offset);

/// Scales every coordinate by `factor`.
Sequence Scale(SequenceView seq, double factor);

/// Z-normalization per dimension: subtracts the mean and divides by the
/// standard deviation (numerically constant dimensions map to zero).
/// Standard preprocessing for amplitude-invariant matching.
Sequence ZNormalize(SequenceView seq);

}  // namespace mdseq

#endif  // MDSEQ_TS_TRANSFORMS_H_
