#include "ts/dft.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace mdseq {

std::vector<std::complex<double>> Dft(const std::vector<double>& series) {
  MDSEQ_CHECK(!series.empty());
  const size_t n = series.size();
  const double norm = 1.0 / std::sqrt(static_cast<double>(n));
  std::vector<std::complex<double>> freq(n);
  for (size_t f = 0; f < n; ++f) {
    std::complex<double> sum = 0.0;
    for (size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(f) *
                           static_cast<double>(t) / static_cast<double>(n);
      sum += series[t] * std::complex<double>(std::cos(angle),
                                              std::sin(angle));
    }
    freq[f] = norm * sum;
  }
  return freq;
}

std::vector<double> InverseDft(
    const std::vector<std::complex<double>>& freq) {
  MDSEQ_CHECK(!freq.empty());
  const size_t n = freq.size();
  const double norm = 1.0 / std::sqrt(static_cast<double>(n));
  std::vector<double> series(n);
  for (size_t t = 0; t < n; ++t) {
    std::complex<double> sum = 0.0;
    for (size_t f = 0; f < n; ++f) {
      const double angle = 2.0 * std::numbers::pi * static_cast<double>(f) *
                           static_cast<double>(t) / static_cast<double>(n);
      sum += freq[f] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    series[t] = norm * sum.real();
  }
  return series;
}

Point DftFeature(SequenceView series, size_t num_coefficients) {
  MDSEQ_CHECK(series.dim() == 1);
  MDSEQ_CHECK(num_coefficients >= 1);
  MDSEQ_CHECK(num_coefficients <= series.size());
  std::vector<double> values(series.size());
  for (size_t i = 0; i < series.size(); ++i) values[i] = series[i][0];
  const std::vector<std::complex<double>> freq = Dft(values);
  Point feature;
  feature.reserve(2 * num_coefficients);
  for (size_t f = 0; f < num_coefficients; ++f) {
    feature.push_back(freq[f].real());
    feature.push_back(freq[f].imag());
  }
  return feature;
}

}  // namespace mdseq
