#ifndef MDSEQ_TS_PCA_H_
#define MDSEQ_TS_PCA_H_

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "geom/sequence.h"

namespace mdseq {

/// Principal component analysis — the general-purpose dimensionality
/// reduction for the paper's pre-processing step ("When the vector is of
/// high dimension, various dimension reduction techniques ... can be
/// applied to avoid the dimensionality curse problem", Section 3.4.1).
///
/// Projection onto an orthonormal basis is a contraction:
/// `|P(a) - P(b)| <= |a - b|`, so distances in the reduced space
/// lower-bound original distances and MBR filtering on reduced sequences
/// keeps the no-false-dismissal guarantee.
class PcaModel {
 public:
  /// Fits a `target_dim`-component model on every point of the corpus
  /// (covariance eigen-decomposition via cyclic Jacobi). Requires at least
  /// one point, matching dimensionalities, and
  /// `1 <= target_dim <= input dim`.
  static PcaModel Fit(const std::vector<Sequence>& corpus, size_t target_dim);

  size_t input_dim() const { return mean_.size(); }
  size_t output_dim() const { return components_.size(); }

  /// Per-component variances (eigenvalues), descending.
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }

  /// Projects one point into the component space.
  Point Project(PointView p) const;

  /// Projects every point of a sequence.
  Sequence ProjectSequence(SequenceView sequence) const;

  /// Maps a reduced point back into the input space (the least-squares
  /// reconstruction).
  Point Reconstruct(PointView reduced) const;

 private:
  Point mean_;
  std::vector<Point> components_;  ///< orthonormal rows, length input_dim
  std::vector<double> explained_variance_;
};

/// Eigen-decomposition of a symmetric matrix (row-major `n x n`) by the
/// cyclic Jacobi method. Outputs eigenvalues (descending) and the matching
/// orthonormal eigenvectors as rows. Exposed for testing and reuse.
void SymmetricEigen(const std::vector<double>& matrix, size_t n,
                    std::vector<double>* eigenvalues,
                    std::vector<Point>* eigenvectors);

}  // namespace mdseq

#endif  // MDSEQ_TS_PCA_H_
