#ifndef MDSEQ_TS_SLIDING_WINDOW_H_
#define MDSEQ_TS_SLIDING_WINDOW_H_

#include <cstddef>

#include "geom/sequence.h"

namespace mdseq {

/// The classic time-series embedding this paper generalizes away from
/// (Section 1): sliding a window of size `w` over a one-dimensional series
/// turns it into a `w`-dimensional sequence whose i-th point is
/// `(x[i], ..., x[i+w-1])`.
///
/// Requires a 1-d input with `series.size() >= w >= 1`; the result has
/// `series.size() - w + 1` points of dimension `w`.
Sequence SlidingWindowEmbed(SequenceView series, size_t w);

/// Inverse check helper: reconstructs the original 1-d series from a
/// sliding-window embedding (first coordinate of each point plus the tail of
/// the last point).
Sequence SlidingWindowRestore(SequenceView embedded);

}  // namespace mdseq

#endif  // MDSEQ_TS_SLIDING_WINDOW_H_
