#ifndef MDSEQ_TS_WAVELET_H_
#define MDSEQ_TS_WAVELET_H_

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "geom/sequence.h"

namespace mdseq {

/// Normalized Haar discrete wavelet transform — the second dimensionality
/// reduction the paper's pre-processing step names ("various dimension
/// reduction techniques such as DFT or Wavelets", Section 3.4.1).
///
/// The orthonormal normalization (averages and differences scaled by
/// 1/sqrt(2) per level) makes the transform an isometry, so Euclidean
/// distance on any coefficient prefix lower-bounds the distance on the full
/// series — the same guarantee DFT features give the F-index.
///
/// `series.size()` must be a power of two.
std::vector<double> HaarTransform(const std::vector<double>& series);

/// Inverse of `HaarTransform`.
std::vector<double> InverseHaarTransform(
    const std::vector<double>& coefficients);

/// Maps a 1-d series (power-of-two length) to its first
/// `num_coefficients` Haar coefficients — the coarse approximation plus
/// the lowest-resolution details.
Point HaarFeature(SequenceView series, size_t num_coefficients);

}  // namespace mdseq

#endif  // MDSEQ_TS_WAVELET_H_
