#include "ts/dtw.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.h"

namespace mdseq {

double DtwDistance(SequenceView a, SequenceView b,
                   const DtwOptions& options) {
  MDSEQ_CHECK(!a.empty() && !b.empty());
  MDSEQ_CHECK(a.dim() == b.dim());
  // Keep the inner loop over the shorter sequence for the rolling arrays.
  const SequenceView outer = a.size() >= b.size() ? a : b;
  const SequenceView inner = a.size() >= b.size() ? b : a;
  const size_t n = outer.size();
  const size_t m = inner.size();

  // A path only exists if the band admits |i - j| up to the length skew.
  size_t window = options.window;
  if (window < n - m) window = n - m;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> previous(m + 1, kInf);
  std::vector<double> current(m + 1, kInf);
  previous[0] = 0.0;

  for (size_t i = 1; i <= n; ++i) {
    std::fill(current.begin(), current.end(), kInf);
    const size_t j_begin = i > window ? i - window : 1;
    // Saturating upper bound (window may be SIZE_MAX).
    const size_t j_end = window >= m ? m : std::min(m, i + window);
    for (size_t j = j_begin; j <= j_end; ++j) {
      const double cost = PointDistance(outer[i - 1], inner[j - 1]);
      const double best_prior = std::min(
          {previous[j], current[j - 1], previous[j - 1]});
      current[j] = cost + best_prior;
    }
    std::swap(previous, current);
  }
  return previous[m];
}

double NormalizedDtwDistance(SequenceView a, SequenceView b,
                             const DtwOptions& options) {
  return DtwDistance(a, b, options) /
         static_cast<double>(a.size() + b.size());
}

}  // namespace mdseq
