#ifndef MDSEQ_TS_DTW_H_
#define MDSEQ_TS_DTW_H_

#include <cstddef>

#include "geom/sequence.h"

namespace mdseq {

/// Options of the dynamic time warping distance.
struct DtwOptions {
  /// Sakoe-Chiba band half-width: cells with `|i - j|` beyond the band are
  /// excluded. `SIZE_MAX` disables the constraint. The band is widened
  /// automatically to at least the length difference, below which no
  /// warping path exists.
  size_t window = SIZE_MAX;
};

/// Dynamic time warping distance between two multidimensional sequences —
/// the "time warping function which permits local accelerations and
/// decelerations" of the related work (Yi, Jagadish & Faloutsos,
/// Section 2), generalized to n-dimensional points.
///
/// Returns the minimum over all monotone alignment paths of the summed
/// Euclidean point distances. O(|a| * |b|) time (band-limited when
/// `options.window` is set), O(min(|a|, |b|)) memory.
double DtwDistance(SequenceView a, SequenceView b,
                   const DtwOptions& options = {});

/// DTW normalized by the worst-case path length `|a| + |b|`, giving a
/// per-step cost comparable across sequence lengths (the analogue of the
/// paper's mean distance for warped alignments).
double NormalizedDtwDistance(SequenceView a, SequenceView b,
                             const DtwOptions& options = {});

}  // namespace mdseq

#endif  // MDSEQ_TS_DTW_H_
