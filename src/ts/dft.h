#ifndef MDSEQ_TS_DFT_H_
#define MDSEQ_TS_DFT_H_

#include <complex>
#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "geom/sequence.h"

namespace mdseq {

/// Normalized discrete Fourier transform of a real series:
/// `X_f = (1/sqrt(n)) * sum_t x_t * exp(-2*pi*i*f*t/n)`.
///
/// The 1/sqrt(n) normalization makes the transform an isometry (Parseval),
/// which is what gives the Agrawal '93 F-index its no-false-dismissal
/// guarantee: Euclidean distance on any coefficient prefix lower-bounds the
/// distance on the full series.
std::vector<std::complex<double>> Dft(const std::vector<double>& series);

/// Inverse of `Dft`.
std::vector<double> InverseDft(const std::vector<std::complex<double>>& freq);

/// Maps a 1-d series to the feature point used by the whole-matching
/// F-index: the real and imaginary parts of the first `num_coefficients`
/// DFT coefficients, i.e. a `2 * num_coefficients`-dimensional point.
Point DftFeature(SequenceView series, size_t num_coefficients);

}  // namespace mdseq

#endif  // MDSEQ_TS_DFT_H_
