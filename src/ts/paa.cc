#include "ts/paa.h"

#include <cmath>

#include "geom/point.h"
#include "util/check.h"

namespace mdseq {

Point PaaFeature(SequenceView series, size_t segments) {
  MDSEQ_CHECK(series.dim() == 1);
  MDSEQ_CHECK(segments >= 1);
  MDSEQ_CHECK(series.size() % segments == 0);
  const size_t frame = series.size() / segments;
  Point feature(segments, 0.0);
  for (size_t s = 0; s < segments; ++s) {
    double sum = 0.0;
    for (size_t i = 0; i < frame; ++i) {
      sum += series[s * frame + i][0];
    }
    feature[s] = sum / static_cast<double>(frame);
  }
  return feature;
}

double PaaDistance(SequenceView a, SequenceView b, size_t segments) {
  MDSEQ_CHECK(a.size() == b.size());
  const Point fa = PaaFeature(a, segments);
  const Point fb = PaaFeature(b, segments);
  const double frame = static_cast<double>(a.size() / segments);
  return std::sqrt(frame) * PointDistance(fa, fb);
}

}  // namespace mdseq
