#include "engine/thread_pool.h"

#include <optional>

namespace mdseq {

ThreadPool::ThreadPool(const Options& options)
    : queue_capacity_(options.queue_capacity),
      started_(!options.start_suspended) {
  if (options.tenant_classes.empty()) {
    queue_ = std::make_unique<AdmissionQueue<PoolTask>>(
        options.queue_capacity, options.policy);
  } else {
    tenant_queue_ = std::make_unique<TenantQueue<PoolTask>>(
        options.queue_capacity, options.policy, options.tenant_classes);
  }
  size_t n = options.num_threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

AdmitResult ThreadPool::Submit(PoolTask task, uint32_t tenant) {
  std::optional<PoolTask> shed;
  const AdmitResult result =
      tenant_queue_ != nullptr
          ? tenant_queue_->Push(std::move(task), tenant, &shed)
          : queue_->Push(std::move(task), &shed);
  if (shed.has_value() && shed->on_shed) shed->on_shed();
  return result;
}

void ThreadPool::Start() {
  {
    std::lock_guard<std::mutex> lock(start_mutex_);
    started_ = true;
  }
  start_cv_.notify_all();
}

void ThreadPool::Shutdown() {
  if (tenant_queue_ != nullptr) {
    tenant_queue_->Close();
  } else {
    queue_->Close();
  }
  Start();  // suspended workers must wake to drain and exit
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  {
    std::unique_lock<std::mutex> lock(start_mutex_);
    start_cv_.wait(lock, [this] { return started_; });
  }
  PoolTask task;
  const auto pop = [this](PoolTask* out) {
    return tenant_queue_ != nullptr ? tenant_queue_->Pop(out)
                                    : queue_->Pop(out);
  };
  while (pop(&task)) {
    task.run();
    // Drop the closures before blocking again so captured state (promises,
    // query payloads) dies promptly.
    task = PoolTask();
  }
}

}  // namespace mdseq
