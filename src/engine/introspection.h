#ifndef MDSEQ_ENGINE_INTROSPECTION_H_
#define MDSEQ_ENGINE_INTROSPECTION_H_

#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "obs/http/server.h"

namespace mdseq {

/// Wires the engine's introspection endpoints onto `server` (registered,
/// not started — the engine starts the server afterwards):
///
///   GET  /metrics            Prometheus text exposition of the registry
///   GET  /healthz            liveness + uptime + queue/worker/pool state
///   GET  /debug/active       in-flight queries (bound with ?limit=N)
///   POST /debug/cancel?id=   fire a query's engine-side cancellation flag
///   GET  /debug/slow         the slow-query ring, newest first (?limit=N)
///   GET  /debug/workload     flight-recorder status + recent records
///                            (?limit=N)
///   GET  /debug/ingest       live-ingest state (WAL, checkpoints, epochs)
///   GET  /debug/shards       shard coordinator topology and counters
///   GET  /debug/trace?id=    Chrome trace JSON for one traced query
///                            (?limit=N bounds the exported spans)
///
/// The engine must outlive the server. Handlers only touch the engine's
/// thread-safe surface (atomics, internally locked snapshots), so they are
/// safe to run while queries execute.
void RegisterEngineEndpoints(obs::http::HttpServer* server,
                             QueryEngine* engine);

/// JSON renderers behind the endpoints, exposed for tests and the CLI.
std::string HealthJson(const EngineHealth& health);
std::string ActiveQueriesJson(const std::vector<ActiveQueryInfo>& queries);
std::string SlowQueriesJson(const std::vector<SlowQueryRecord>& records);
std::string IngestStatusJson(const IngestStatus& status);
std::string WorkloadStatusJson(const WorkloadRecorder& recorder,
                               size_t limit);

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_INTROSPECTION_H_
