#ifndef MDSEQ_ENGINE_WORKLOAD_REPLAY_H_
#define MDSEQ_ENGINE_WORKLOAD_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "engine/workload_recorder.h"

namespace mdseq {

/// How `RunReplay` paces submissions.
struct ReplayOptions {
  enum class Pace {
    /// Closed loop: submit everything immediately and let the engine's
    /// admission queue provide backpressure — measures max throughput.
    kMax,
    /// Recreate the recorded arrival spacing, scaled by `speed`.
    kRecorded,
  };
  Pace pace = Pace::kMax;
  /// Recorded-pace time scale: 2.0 replays twice as fast ("accelerated"),
  /// 1.0 is faithful. Ignored under kMax.
  double speed = 1.0;
  /// Re-apply recorded per-query deadlines. Off by default: a replay
  /// usually measures the build's answers, and a deadline that expired in
  /// the original regime would make results non-comparable.
  bool apply_deadlines = false;
};

/// Result of re-executing a recording: one re-recorded
/// `WorkloadQueryRecord` per input record (same ids, same order), so the
/// output of a replay can itself be written to a log and diffed.
struct ReplayReport {
  std::vector<WorkloadQueryRecord> records;
  uint64_t replayed = 0;
  /// Replayed queries that resolved kOk.
  uint64_t ok = 0;
  double wall_seconds = 0.0;
};

/// Re-executes every record of `recording` against `engine`. Queries are
/// submitted in record order; per-query epsilon/verified come from the
/// record, while the engine-wide `SearchOptions` are whatever the engine
/// was built with (pin or change them to probe a knob — the diff below
/// tells you what changed).
ReplayReport RunReplay(QueryEngine* engine,
                       const std::vector<WorkloadQueryRecord>& recording,
                       const ReplayOptions& options = ReplayOptions());

/// One query whose two executions disagree.
struct ReplayDivergence {
  uint64_t id = 0;
  bool outcome_differs = false;
  bool digest_differs = false;
  bool counters_differ = false;
  const char* outcome_a = "ok";
  const char* outcome_b = "ok";
  uint64_t digest_a = 0;
  uint64_t digest_b = 0;
  uint64_t matches_a = 0;
  uint64_t matches_b = 0;
  /// Human-readable "name: a -> b" rows for every diverging deterministic
  /// cascade counter.
  std::vector<std::string> counter_diffs;
  /// Shards whose slice digest or counters diverge (coordinator records).
  std::vector<uint32_t> diverging_shards;
};

/// Per-query comparison of two runs of the same workload (two recordings,
/// or a replay report against its source recording). Records pair by query
/// id. Digests compare exactly; counters compare only the deterministic
/// cascade fields (node accesses, candidates, matches, Dnorm evaluations,
/// abandons, prefilter counts, bytes read, shard coverage) — never wall
/// times or buffer-pool hit/miss splits, which legitimately vary run to
/// run.
struct ReplayDiff {
  uint64_t compared = 0;
  /// Ids present on one side only.
  uint64_t unmatched = 0;
  uint64_t outcome_divergences = 0;
  uint64_t digest_divergences = 0;
  uint64_t counter_divergences = 0;
  std::vector<ReplayDivergence> divergences;

  bool clean() const {
    return unmatched == 0 && outcome_divergences == 0 &&
           digest_divergences == 0 && counter_divergences == 0;
  }
};

ReplayDiff DiffWorkloads(const std::vector<WorkloadQueryRecord>& a,
                         const std::vector<WorkloadQueryRecord>& b);

/// JSON rendering of a diff (the `mdseq_cli replay --json-out` payload).
std::string ReplayDiffJson(const ReplayDiff& diff);

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_WORKLOAD_REPLAY_H_
