#ifndef MDSEQ_ENGINE_CANCELLATION_H_
#define MDSEQ_ENGINE_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace mdseq {

class CancellationSource;

/// A copyable handle to a cancellation flag owned by a `CancellationSource`.
/// Queries carry a token; the submitter keeps the source and may cancel at
/// any time. The search path polls the flag between pruning phases (see
/// `SearchControl`), so cancellation is cooperative: a running query stops
/// at its next checkpoint, a queued query is dropped before it starts.
///
/// A default-constructed token is "empty" and never reports cancellation.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True when this token is wired to a source (empty tokens never cancel).
  bool valid() const { return flag_ != nullptr; }

  /// True when the source has been cancelled.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// The underlying flag for `SearchControl::cancel`; nullptr when empty.
  /// Valid as long as any token/source sharing the flag is alive.
  const std::atomic<bool>* flag() const { return flag_.get(); }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Owns a cancellation flag and hands out tokens observing it. Thread-safe:
/// `Cancel` may race freely with any number of observers.
class CancellationSource {
 public:
  CancellationSource()
      : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_CANCELLATION_H_
