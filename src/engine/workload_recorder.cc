#include "engine/workload_recorder.h"

#include <cstring>
#include <type_traits>

namespace mdseq {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FnvMixBytes(uint64_t* hash, const void* bytes, size_t count) {
  const uint8_t* at = static_cast<const uint8_t*>(bytes);
  for (size_t i = 0; i < count; ++i) {
    *hash ^= at[i];
    *hash *= kFnvPrime;
  }
}

void FnvMixU64(uint64_t* hash, uint64_t value) {
  FnvMixBytes(hash, &value, sizeof(value));
}

// --- flat native-endian append/read helpers ---------------------------------

template <typename T>
void Put(std::vector<uint8_t>* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

struct Cursor {
  const uint8_t* at;
  size_t left;
  bool ok = true;

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (left < sizeof(T)) {
      ok = false;
      return value;
    }
    std::memcpy(&value, at, sizeof(T));
    at += sizeof(T);
    left -= sizeof(T);
    return value;
  }
};

// The stats block serializes every SearchStats field in declaration order.
// Bumping kWorkloadRecordVersion is the compatibility story: a recording is
// tied to one build lineage, not a wire contract.
void PutStats(std::vector<uint8_t>* out, const SearchStats& stats) {
  Put(out, static_cast<uint64_t>(stats.node_accesses));
  Put(out, static_cast<uint64_t>(stats.phase2_candidates));
  Put(out, static_cast<uint64_t>(stats.phase3_matches));
  Put(out, static_cast<uint64_t>(stats.filter_matches));
  Put(out, static_cast<uint64_t>(stats.dnorm_evaluations));
  Put(out, static_cast<uint64_t>(stats.query_mbrs));
  Put(out, stats.page_hits);
  Put(out, stats.page_misses);
  Put(out, stats.partition_ns);
  Put(out, stats.first_pruning_ns);
  Put(out, stats.second_pruning_ns);
  Put(out, stats.interval_assembly_ns);
  Put(out, stats.verify_ns);
  Put(out, stats.probe_abandons);
  Put(out, stats.verify_abandons);
  Put(out, stats.bytes_read);
  Put(out, stats.prefilter_abandons);
  Put(out, stats.prefilter_survivors);
  Put(out, stats.prefilter_ns);
  Put(out, stats.fanout_wait_ns);
  Put(out, stats.merge_ns);
  Put(out, stats.shards_total);
  Put(out, stats.shards_failed);
  Put(out, stats.approx_candidates_skipped);
  Put(out, stats.approx_certified_epsilon);
}

void GetStats(Cursor* in, SearchStats* stats) {
  stats->node_accesses = in->Get<uint64_t>();
  stats->phase2_candidates = static_cast<size_t>(in->Get<uint64_t>());
  stats->phase3_matches = static_cast<size_t>(in->Get<uint64_t>());
  stats->filter_matches = static_cast<size_t>(in->Get<uint64_t>());
  stats->dnorm_evaluations = static_cast<size_t>(in->Get<uint64_t>());
  stats->query_mbrs = static_cast<size_t>(in->Get<uint64_t>());
  stats->page_hits = in->Get<uint64_t>();
  stats->page_misses = in->Get<uint64_t>();
  stats->partition_ns = in->Get<uint64_t>();
  stats->first_pruning_ns = in->Get<uint64_t>();
  stats->second_pruning_ns = in->Get<uint64_t>();
  stats->interval_assembly_ns = in->Get<uint64_t>();
  stats->verify_ns = in->Get<uint64_t>();
  stats->probe_abandons = in->Get<uint64_t>();
  stats->verify_abandons = in->Get<uint64_t>();
  stats->bytes_read = in->Get<uint64_t>();
  stats->prefilter_abandons = in->Get<uint64_t>();
  stats->prefilter_survivors = in->Get<uint64_t>();
  stats->prefilter_ns = in->Get<uint64_t>();
  stats->fanout_wait_ns = in->Get<uint64_t>();
  stats->merge_ns = in->Get<uint64_t>();
  stats->shards_total = in->Get<uint32_t>();
  stats->shards_failed = in->Get<uint32_t>();
  stats->approx_candidates_skipped = in->Get<uint64_t>();
  stats->approx_certified_epsilon = in->Get<double>();
}

// v2: approximate-tier fields — the per-query approximate flag, the budget
// knobs, the tenant class, and the skipped/certified stats columns.
constexpr uint8_t kWorkloadRecordVersion = 2;

}  // namespace

uint64_t WorkloadQuerySignature(SequenceView query, double epsilon,
                                bool verified,
                                const SearchOptions& options) {
  uint64_t hash = kFnvOffset;
  FnvMixU64(&hash, query.dim());
  FnvMixU64(&hash, query.size());
  if (!query.empty()) {
    // Points are contiguous row-major doubles; the first point's span
    // starts the whole payload.
    FnvMixBytes(&hash, query[0].data(),
                query.size() * query.dim() * sizeof(double));
  }
  uint64_t epsilon_bits = 0;
  std::memcpy(&epsilon_bits, &epsilon, sizeof(epsilon));
  FnvMixU64(&hash, epsilon_bits);
  FnvMixU64(&hash, (verified ? 1u : 0u) | (options.prefilter ? 2u : 0u) |
                       (options.composite_bound ? 4u : 0u));
  // The quality budget changes the answer, so it is part of the query's
  // identity (and of the result-cache key).
  FnvMixU64(&hash, options.max_candidates);
  FnvMixU64(&hash, options.max_epsilon_rounds);
  return hash;
}

std::vector<uint8_t> EncodeWorkloadRecord(const WorkloadQueryRecord& record) {
  std::vector<uint8_t> out;
  out.reserve(512 + record.query.data().size() * sizeof(double));
  Put(&out, kWorkloadRecordVersion);
  Put(&out, record.id);
  Put(&out, record.arrival_unix);
  Put(&out, record.completion_unix);
  Put(&out, record.outcome);
  Put(&out, record.epsilon);
  Put(&out, static_cast<uint8_t>(record.verified ? 1 : 0));
  Put(&out, static_cast<uint8_t>(record.opt_prefilter ? 1 : 0));
  Put(&out, static_cast<uint8_t>(record.opt_composite ? 1 : 0));
  Put(&out, static_cast<uint8_t>(record.approximate ? 1 : 0));
  Put(&out, record.opt_max_candidates);
  Put(&out, record.opt_max_epsilon_rounds);
  Put(&out, record.tenant);
  Put(&out, static_cast<uint8_t>(record.interrupted ? 1 : 0));
  Put(&out, record.deadline_us);
  Put(&out, record.signature);
  Put(&out, record.result_digest);
  Put(&out, record.matches);
  PutStats(&out, record.stats);
  Put(&out, static_cast<uint32_t>(record.shards.size()));
  for (const ShardQueryStats& shard : record.shards) {
    Put(&out, shard.shard);
    Put(&out, static_cast<uint8_t>(shard.ok ? 1 : 0));
    Put(&out, static_cast<uint8_t>(shard.interrupted ? 1 : 0));
    Put(&out, shard.rpc_ns);
    Put(&out, shard.num_sequences);
    Put(&out, shard.digest);
    PutStats(&out, shard.stats);
  }
  Put(&out, static_cast<uint32_t>(record.query.dim()));
  Put(&out, static_cast<uint64_t>(record.query.size()));
  const std::vector<double>& data = record.query.data();
  const size_t at = out.size();
  out.resize(at + data.size() * sizeof(double));
  if (!data.empty()) {
    std::memcpy(out.data() + at, data.data(), data.size() * sizeof(double));
  }
  return out;
}

bool DecodeWorkloadRecord(const uint8_t* bytes, size_t count,
                          WorkloadQueryRecord* record) {
  Cursor in{bytes, count};
  if (in.Get<uint8_t>() != kWorkloadRecordVersion) return false;
  record->id = in.Get<uint64_t>();
  record->arrival_unix = in.Get<double>();
  record->completion_unix = in.Get<double>();
  record->outcome = in.Get<uint8_t>();
  record->epsilon = in.Get<double>();
  record->verified = in.Get<uint8_t>() != 0;
  record->opt_prefilter = in.Get<uint8_t>() != 0;
  record->opt_composite = in.Get<uint8_t>() != 0;
  record->approximate = in.Get<uint8_t>() != 0;
  record->opt_max_candidates = in.Get<uint64_t>();
  record->opt_max_epsilon_rounds = in.Get<uint32_t>();
  record->tenant = in.Get<uint32_t>();
  record->interrupted = in.Get<uint8_t>() != 0;
  record->deadline_us = in.Get<uint64_t>();
  record->signature = in.Get<uint64_t>();
  record->result_digest = in.Get<uint64_t>();
  record->matches = in.Get<uint64_t>();
  GetStats(&in, &record->stats);
  const uint32_t shard_count = in.Get<uint32_t>();
  record->shards.clear();
  for (uint32_t i = 0; in.ok && i < shard_count; ++i) {
    ShardQueryStats shard;
    shard.shard = in.Get<uint32_t>();
    shard.ok = in.Get<uint8_t>() != 0;
    shard.interrupted = in.Get<uint8_t>() != 0;
    shard.rpc_ns = in.Get<uint64_t>();
    shard.num_sequences = in.Get<uint64_t>();
    shard.digest = in.Get<uint64_t>();
    GetStats(&in, &shard.stats);
    record->shards.push_back(std::move(shard));
  }
  const uint32_t dim = in.Get<uint32_t>();
  const uint64_t points = in.Get<uint64_t>();
  if (!in.ok || dim == 0) return false;
  const size_t doubles = static_cast<size_t>(points) * dim;
  if (in.left != doubles * sizeof(double)) return false;
  Sequence query(dim);
  if (doubles > 0) {
    query.Extend(SequenceView(reinterpret_cast<const double*>(in.at),
                              static_cast<size_t>(points), dim));
  }
  record->query = std::move(query);
  return true;
}

WorkloadReadResult ReadWorkloadRecords(const std::string& path) {
  WorkloadReadResult result;
  const obs::WorkloadScanResult scan =
      obs::ScanWorkloadLogWithRotation(path);
  result.clean = scan.clean_eof;
  for (const obs::WorkloadFrame& frame : scan.frames) {
    if (frame.type != kWorkloadQueryFrame) {
      ++result.skipped;
      continue;
    }
    WorkloadQueryRecord record;
    if (!DecodeWorkloadRecord(frame.payload.data(), frame.payload.size(),
                              &record)) {
      ++result.skipped;
      result.clean = false;
      continue;
    }
    result.records.push_back(std::move(record));
  }
  return result;
}

WorkloadRecorder::WorkloadRecorder(const Options& options)
    : options_(options) {
  obs::WorkloadLogWriter::Options log_options;
  log_options.max_bytes = options_.max_bytes;
  ok_ = writer_.Open(options_.path, log_options);
}

void WorkloadRecorder::RegisterMetrics(obs::MetricsRegistry* registry) {
  metric_records_ = registry->GetCounter(
      "mdseq_workload_records_total",
      "Query records appended to the workload flight-recorder log");
  metric_bytes_ = registry->GetCounter(
      "mdseq_workload_bytes_total",
      "Framed bytes appended to the workload flight-recorder log");
  metric_sampled_out_ = registry->GetCounter(
      "mdseq_workload_sampled_out_total",
      "Completed queries skipped by the recorder's sampling knob");
  metric_rotations_ = registry->GetCounter(
      "mdseq_workload_rotations_total",
      "Workload log rotations forced by the byte budget");
  metric_write_failures_ = registry->GetCounter(
      "mdseq_workload_write_failures_total",
      "Workload records lost to append/open failures");
}

void WorkloadRecorder::Record(const WorkloadQueryRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t sample_every =
      options_.sample_every == 0 ? 1 : options_.sample_every;
  if (seen_++ % sample_every != 0) {
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    if (metric_sampled_out_ != nullptr) metric_sampled_out_->Increment();
    return;
  }
  if (!ok_) {
    write_failures_.fetch_add(1, std::memory_order_relaxed);
    if (metric_write_failures_ != nullptr) {
      metric_write_failures_->Increment();
    }
    return;
  }
  const std::vector<uint8_t> payload = EncodeWorkloadRecord(record);
  const uint64_t rotations_before = writer_.rotations();
  const uint64_t bytes_before = writer_.bytes_written();
  if (!writer_.Append(kWorkloadQueryFrame, payload.data(), payload.size())) {
    write_failures_.fetch_add(1, std::memory_order_relaxed);
    if (metric_write_failures_ != nullptr) {
      metric_write_failures_->Increment();
    }
    return;
  }
  const uint64_t appended = writer_.bytes_written() - bytes_before;
  const uint64_t rotated = writer_.rotations() - rotations_before;
  records_written_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(appended, std::memory_order_relaxed);
  rotations_.fetch_add(rotated, std::memory_order_relaxed);
  if (metric_records_ != nullptr) metric_records_->Increment();
  if (metric_bytes_ != nullptr) metric_bytes_->Increment(appended);
  if (metric_rotations_ != nullptr && rotated > 0) {
    metric_rotations_->Increment(rotated);
  }
  recent_.push_back(record);
  while (recent_.size() > options_.recent_capacity) recent_.pop_front();
}

std::vector<WorkloadQueryRecord> WorkloadRecorder::Recent(
    size_t limit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkloadQueryRecord> out;
  const size_t count = recent_.size() < limit ? recent_.size() : limit;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(recent_[recent_.size() - 1 - i]);
  }
  return out;
}

}  // namespace mdseq
