#include "engine/introspection.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/json.h"
#include "obs/trace.h"
#include "shard/coordinator.h"

namespace mdseq {

namespace {

using obs::http::HttpRequest;
using obs::http::HttpResponse;
using obs::http::JsonResponse;
using obs::http::TextResponse;

void AppendU64(std::string* out, const char* key, uint64_t value) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "\"%s\": %" PRIu64, key, value);
  out->append(buffer);
}

void AppendF64(std::string* out, const char* key, double value) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "\"%s\": %.17g", key, value);
  out->append(buffer);
}

void AppendBool(std::string* out, const char* key, bool value) {
  out->append("\"").append(key).append("\": ").append(value ? "true"
                                                           : "false");
}

/// Parses the `id` query parameter; false on absent/non-numeric.
bool ParseId(const HttpRequest& request, uint64_t* id) {
  auto it = request.params.find("id");
  if (it == request.params.end() || it->second.empty()) return false;
  uint64_t value = 0;
  for (char c : it->second) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = value;
  return true;
}

/// The optional `limit` query parameter bounding a listing endpoint's
/// response size. Absent leaves `*limit` untouched (no bound); a
/// non-numeric value is a client error.
enum class LimitParse { kAbsent, kOk, kBad };
LimitParse ParseLimit(const HttpRequest& request, size_t* limit) {
  auto it = request.params.find("limit");
  if (it == request.params.end()) return LimitParse::kAbsent;
  if (it->second.empty()) return LimitParse::kBad;
  uint64_t value = 0;
  for (char c : it->second) {
    if (c < '0' || c > '9') return LimitParse::kBad;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *limit = static_cast<size_t>(value);
  return LimitParse::kOk;
}

}  // namespace

std::string HealthJson(const EngineHealth& health) {
  std::string out = "{";
  AppendBool(&out, "accepting", health.accepting);
  out.append(", ");
  AppendU64(&out, "workers", health.workers);
  out.append(", ");
  AppendU64(&out, "queue_depth", health.queue_depth);
  out.append(", ");
  AppendU64(&out, "queue_capacity", health.queue_capacity);
  out.append(", ");
  AppendU64(&out, "submitted", health.submitted);
  out.append(", ");
  AppendU64(&out, "served", health.served);
  out.append(", ");
  AppendU64(&out, "active_queries", health.active_queries);
  out.append(", ");
  AppendF64(&out, "start_unix_ts", health.start_unix_ts);
  out.append(", ");
  AppendF64(&out, "uptime_seconds", health.uptime_seconds);
  out.append(", ");
  AppendBool(&out, "disk_backed", health.disk_backed);
  out.append(", \"buffer_pool\": {");
  AppendU64(&out, "capacity", health.pool.capacity);
  out.append(", ");
  AppendU64(&out, "resident", health.pool.resident);
  out.append(", ");
  AppendU64(&out, "pinned", health.pool.pinned);
  out.append(", ");
  AppendU64(&out, "dirty", health.pool.dirty);
  out.append(", ");
  AppendU64(&out, "hits", health.pool.hits);
  out.append(", ");
  AppendU64(&out, "misses", health.pool.misses);
  out.append(", ");
  AppendU64(&out, "evictions", health.pool.evictions);
  out.append("}}\n");
  return out;
}

std::string ActiveQueriesJson(const std::vector<ActiveQueryInfo>& queries) {
  std::string out = "{\"active\": [";
  bool first = true;
  for (const ActiveQueryInfo& info : queries) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n  {");
    AppendU64(&out, "id", info.id);
    out.append(", ");
    AppendF64(&out, "epsilon", info.epsilon);
    out.append(", ");
    AppendBool(&out, "verified", info.verified);
    out.append(", ");
    AppendU64(&out, "elapsed_us", info.elapsed_us);
    out.append(", \"phase\": ")
        .append(obs::JsonQuote(SearchPhaseName(info.phase)))
        .append(", ");
    AppendU64(&out, "phase2_candidates", info.phase2_candidates);
    out.append(", ");
    AppendU64(&out, "phase3_matches", info.phase3_matches);
    out.push_back('}');
  }
  out.append(first ? "]}\n" : "\n]}\n");
  return out;
}

std::string SlowQueriesJson(const std::vector<SlowQueryRecord>& records) {
  std::string out = "{\"slow\": [";
  bool first = true;
  for (const SlowQueryRecord& record : records) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n  {");
    AppendU64(&out, "id", record.id);
    out.append(", \"status\": ")
        .append(obs::JsonQuote(record.status))
        .append(", ");
    AppendU64(&out, "latency_us", record.latency_us);
    out.append(", ");
    AppendF64(&out, "epsilon", record.epsilon);
    out.append(", ");
    AppendBool(&out, "verified", record.verified);
    out.append(", ");
    AppendF64(&out, "unix_ts", record.unix_ts);
    out.append(", ");
    AppendU64(&out, "matches", record.matches);
    out.append(", ");
    AppendU64(&out, "node_accesses", record.stats.node_accesses);
    out.append(", ");
    AppendU64(&out, "phase2_candidates", record.stats.phase2_candidates);
    out.append(", ");
    AppendU64(&out, "phase3_matches", record.stats.phase3_matches);
    out.append(", ");
    AppendU64(&out, "dnorm_evaluations", record.stats.dnorm_evaluations);
    out.append(", ");
    AppendU64(&out, "page_misses", record.stats.page_misses);
    out.append(", ");
    AppendU64(&out, "partition_ns", record.stats.partition_ns);
    out.append(", ");
    AppendU64(&out, "first_pruning_ns", record.stats.first_pruning_ns);
    out.append(", ");
    AppendU64(&out, "second_pruning_ns", record.stats.second_pruning_ns);
    out.append(", ");
    AppendU64(&out, "verify_ns", record.stats.verify_ns);
    out.append(", ");
    AppendU64(&out, "probe_abandons", record.stats.probe_abandons);
    out.append(", ");
    AppendU64(&out, "verify_abandons", record.stats.verify_abandons);
    out.append(", ");
    AppendU64(&out, "bytes_read", record.stats.bytes_read);
    out.append(", ");
    AppendU64(&out, "prefilter_abandons", record.stats.prefilter_abandons);
    out.append(", ");
    AppendU64(&out, "prefilter_survivors", record.stats.prefilter_survivors);
    out.append(", ");
    AppendU64(&out, "prefilter_ns", record.stats.prefilter_ns);
    out.append(", ");
    AppendU64(&out, "shards_total", record.stats.shards_total);
    out.append(", ");
    AppendU64(&out, "shards_failed", record.stats.shards_failed);
    out.append(", ");
    AppendU64(&out, "fanout_wait_ns", record.stats.fanout_wait_ns);
    out.append(", ");
    AppendU64(&out, "merge_ns", record.stats.merge_ns);
    out.append(", \"shards\": [");
    bool first_shard = true;
    for (const ShardQueryStats& shard : record.shards) {
      if (!first_shard) out.append(", ");
      first_shard = false;
      out.push_back('{');
      AppendU64(&out, "shard", shard.shard);
      out.append(", ");
      AppendBool(&out, "ok", shard.ok);
      out.append(", ");
      AppendBool(&out, "interrupted", shard.interrupted);
      out.append(", ");
      AppendU64(&out, "rpc_ns", shard.rpc_ns);
      out.append(", ");
      AppendU64(&out, "sequences", shard.num_sequences);
      out.append(", ");
      AppendU64(&out, "phase2_candidates", shard.stats.phase2_candidates);
      out.append(", ");
      AppendU64(&out, "filter_matches", shard.stats.filter_matches);
      out.append(", ");
      AppendU64(&out, "phase3_matches", shard.stats.phase3_matches);
      out.append(", ");
      AppendU64(&out, "dnorm_evaluations", shard.stats.dnorm_evaluations);
      out.append(", ");
      AppendU64(&out, "probe_abandons", shard.stats.probe_abandons);
      out.append(", ");
      AppendU64(&out, "verify_abandons", shard.stats.verify_abandons);
      out.append(", ");
      AppendU64(&out, "bytes_read", shard.stats.bytes_read);
      out.append(", ");
      AppendU64(&out, "prefilter_abandons", shard.stats.prefilter_abandons);
      out.append(", ");
      AppendU64(&out, "prefilter_survivors",
                shard.stats.prefilter_survivors);
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append(first ? "]}\n" : "\n]}\n");
  return out;
}

std::string IngestStatusJson(const IngestStatus& status) {
  std::string out = "{";
  AppendU64(&out, "dim", status.dim);
  out.append(", ");
  AppendU64(&out, "base_sequences", status.base_sequences);
  out.append(", ");
  AppendU64(&out, "pending_sequences", status.pending_sequences);
  out.append(", ");
  AppendU64(&out, "total_sequences", status.total_sequences);
  out.append(", ");
  AppendU64(&out, "points_total", status.points_total);
  out.append(", \"wal\": {");
  AppendU64(&out, "records", status.wal_records);
  out.append(", ");
  AppendU64(&out, "commits", status.wal_commits);
  out.append(", ");
  AppendU64(&out, "fsyncs", status.wal_fsyncs);
  out.append(", ");
  AppendU64(&out, "bytes_committed", status.wal_bytes);
  out.append(", ");
  AppendU64(&out, "pages", status.wal_pages);
  out.append(", ");
  AppendU64(&out, "recovered_records", status.recovered_records);
  out.append("}, ");
  AppendU64(&out, "checkpoints", status.checkpoints);
  out.append(", ");
  AppendF64(&out, "last_checkpoint_seconds", status.last_checkpoint_seconds);
  out.append(", ");
  AppendU64(&out, "epoch", status.epoch);
  out.append(", ");
  AppendU64(&out, "retired_pages", status.retired_pages);
  out.append(", ");
  AppendU64(&out, "free_pages", status.free_pages);
  out.append(", ");
  AppendU64(&out, "tree_inserts", status.tree_inserts);
  out.append(", ");
  AppendU64(&out, "file_pages", status.file_pages);
  out.append("}\n");
  return out;
}

std::string WorkloadStatusJson(const WorkloadRecorder& recorder,
                               size_t limit) {
  std::string out = "{";
  AppendBool(&out, "enabled", recorder.ok());
  out.append(", \"path\": ")
      .append(obs::JsonQuote(recorder.options().path))
      .append(", ");
  AppendU64(&out, "sample_every", recorder.options().sample_every);
  out.append(", ");
  AppendU64(&out, "max_bytes", recorder.options().max_bytes);
  out.append(", ");
  AppendU64(&out, "records_written", recorder.records_written());
  out.append(", ");
  AppendU64(&out, "bytes_written", recorder.bytes_written());
  out.append(", ");
  AppendU64(&out, "sampled_out", recorder.sampled_out());
  out.append(", ");
  AppendU64(&out, "rotations", recorder.rotations());
  out.append(", ");
  AppendU64(&out, "write_failures", recorder.write_failures());
  out.append(", \"recent\": [");
  bool first = true;
  for (const WorkloadQueryRecord& record : recorder.Recent(limit)) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n  {");
    AppendU64(&out, "id", record.id);
    out.append(", \"status\": ")
        .append(obs::JsonQuote(
            QueryStatusName(static_cast<QueryStatus>(record.outcome))))
        .append(", ");
    AppendF64(&out, "arrival_unix", record.arrival_unix);
    out.append(", ");
    AppendF64(&out, "completion_unix", record.completion_unix);
    out.append(", ");
    AppendF64(&out, "epsilon", record.epsilon);
    out.append(", ");
    AppendBool(&out, "verified", record.verified);
    out.append(", ");
    AppendBool(&out, "interrupted", record.interrupted);
    out.append(", ");
    AppendU64(&out, "query_points", record.query.size());
    out.append(", ");
    AppendU64(&out, "matches", record.matches);
    out.append(", ");
    AppendU64(&out, "signature", record.signature);
    out.append(", ");
    AppendU64(&out, "result_digest", record.result_digest);
    out.append(", ");
    AppendU64(&out, "node_accesses", record.stats.node_accesses);
    out.append(", ");
    AppendU64(&out, "phase2_candidates", record.stats.phase2_candidates);
    out.append(", ");
    AppendU64(&out, "phase3_matches", record.stats.phase3_matches);
    out.append(", ");
    AppendU64(&out, "dnorm_evaluations", record.stats.dnorm_evaluations);
    out.append(", \"shards\": [");
    bool first_shard = true;
    for (const ShardQueryStats& shard : record.shards) {
      if (!first_shard) out.append(", ");
      first_shard = false;
      out.push_back('{');
      AppendU64(&out, "shard", shard.shard);
      out.append(", ");
      AppendBool(&out, "ok", shard.ok);
      out.append(", ");
      AppendU64(&out, "digest", shard.digest);
      out.append(", ");
      AppendU64(&out, "dnorm_evaluations", shard.stats.dnorm_evaluations);
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append(first ? "]}\n" : "\n]}\n");
  return out;
}

void RegisterEngineEndpoints(obs::http::HttpServer* server,
                             QueryEngine* engine) {
  server->Handle("GET", "/metrics", [engine](const HttpRequest&) {
    obs::MetricsRegistry* registry = engine->metrics_registry();
    if (registry == nullptr) {
      return TextResponse(503, "no metrics registry installed\n");
    }
    engine->RefreshScrapeGauges();
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry->PrometheusText();
    return response;
  });

  server->Handle("GET", "/healthz", [engine](const HttpRequest&) {
    return JsonResponse(200, HealthJson(engine->Health()));
  });

  server->Handle("GET", "/debug/active", [engine](const HttpRequest& request) {
    size_t limit = SIZE_MAX;
    if (ParseLimit(request, &limit) == LimitParse::kBad) {
      return TextResponse(400, "malformed limit parameter\n");
    }
    std::vector<ActiveQueryInfo> queries = engine->ActiveQueries();
    if (queries.size() > limit) queries.resize(limit);
    return JsonResponse(200, ActiveQueriesJson(queries));
  });

  server->Handle("POST", "/debug/cancel",
                 [engine](const HttpRequest& request) {
                   uint64_t id = 0;
                   if (!ParseId(request, &id)) {
                     return TextResponse(
                         400, "missing or malformed id parameter\n");
                   }
                   if (!engine->CancelQuery(id)) {
                     return TextResponse(404, "query not in flight\n");
                   }
                   std::string body = "{";
                   AppendU64(&body, "cancelled_id", id);
                   body.append("}\n");
                   return JsonResponse(200, std::move(body));
                 });

  server->Handle("GET", "/debug/slow", [engine](const HttpRequest& request) {
    size_t limit = SIZE_MAX;
    if (ParseLimit(request, &limit) == LimitParse::kBad) {
      return TextResponse(400, "malformed limit parameter\n");
    }
    // Snapshot is newest first, so a limit keeps the most recent records.
    std::vector<SlowQueryRecord> records = engine->SlowQueries();
    if (records.size() > limit) records.resize(limit);
    return JsonResponse(200, SlowQueriesJson(records));
  });

  server->Handle(
      "GET", "/debug/workload", [engine](const HttpRequest& request) {
        size_t limit = SIZE_MAX;
        if (ParseLimit(request, &limit) == LimitParse::kBad) {
          return TextResponse(400, "malformed limit parameter\n");
        }
        WorkloadRecorder* recorder = engine->workload_recorder();
        if (recorder == nullptr) {
          return TextResponse(
              404, "workload recorder off (set workload_log_path)\n");
        }
        return JsonResponse(200, WorkloadStatusJson(*recorder, limit));
      });

  server->Handle("GET", "/debug/ingest", [engine](const HttpRequest&) {
    LiveDatabase* database = engine->live_database();
    if (database == nullptr) {
      return TextResponse(404, "engine is not backed by a live database\n");
    }
    return JsonResponse(200, IngestStatusJson(database->Status()));
  });

  server->Handle("GET", "/debug/cache", [engine](const HttpRequest&) {
    ResultCache* cache = engine->result_cache();
    if (cache == nullptr) {
      return TextResponse(404, "result cache off (set cache_bytes)\n");
    }
    return JsonResponse(200, cache->DebugJson());
  });

  server->Handle("GET", "/debug/tenants", [engine](const HttpRequest&) {
    const std::vector<TenantClassStats> classes = engine->TenantStats();
    if (classes.empty()) {
      return TextResponse(
          404, "tenant admission classes off (set tenant_classes)\n");
    }
    std::string out = "{\"classes\": [";
    for (size_t i = 0; i < classes.size(); ++i) {
      const TenantClassStats& c = classes[i];
      if (i > 0) out.append(", ");
      out.append("{\"name\": \"").append(c.name).append("\", ");
      AppendU64(&out, "weight", c.weight);
      out.append(", ");
      AppendU64(&out, "quota", c.quota);
      out.append(", ");
      AppendU64(&out, "depth", c.depth);
      out.append(", ");
      AppendU64(&out, "submitted", c.submitted);
      out.append(", ");
      AppendU64(&out, "admitted", c.admitted);
      out.append(", ");
      AppendU64(&out, "rejected", c.rejected);
      out.append(", ");
      AppendU64(&out, "shed", c.shed);
      out.append(", ");
      AppendU64(&out, "popped", c.popped);
      out.append("}");
    }
    out.append("]}");
    return JsonResponse(200, std::move(out));
  });

  server->Handle("GET", "/debug/shards", [engine](const HttpRequest&) {
    Coordinator* coordinator = engine->coordinator();
    if (coordinator == nullptr) {
      return TextResponse(404, "engine is not a shard coordinator\n");
    }
    return JsonResponse(200, coordinator->DebugJson());
  });

  server->Handle("GET", "/debug/trace", [engine](const HttpRequest& request) {
    uint64_t id = 0;
    if (!ParseId(request, &id)) {
      return TextResponse(400, "missing or malformed id parameter\n");
    }
    size_t limit = SIZE_MAX;
    if (ParseLimit(request, &limit) == LimitParse::kBad) {
      return TextResponse(400, "malformed limit parameter\n");
    }
    std::vector<obs::Trace> traces = engine->SnapshotTraces(id);
    if (traces.empty()) {
      return TextResponse(404,
                          "no trace for that id (tracing off, trace "
                          "evicted, or query still running)\n");
    }
    if (limit != SIZE_MAX) {
      // Bound the exported span count per trace: spans are stored in begin
      // order (pre-order walk), so the first N are the outermost/earliest
      // work. Span names point into the source traces, which stay alive
      // through serialization below.
      std::vector<obs::Trace> bounded;
      bounded.reserve(traces.size());
      for (const obs::Trace& trace : traces) {
        obs::Trace copy;
        copy.set_query_id(trace.query_id());
        for (const auto& [lane, name] : trace.lane_names()) {
          copy.SetLaneName(lane, name);
        }
        const size_t count =
            trace.spans().size() < limit ? trace.spans().size() : limit;
        for (size_t i = 0; i < count; ++i) {
          copy.AddSpan(trace.spans()[i]);
        }
        bounded.push_back(std::move(copy));
      }
      return JsonResponse(200, obs::ChromeTraceJson(bounded));
    }
    return JsonResponse(200, obs::ChromeTraceJson(traces));
  });
}

}  // namespace mdseq
