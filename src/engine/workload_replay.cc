#include "engine/workload_replay.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <future>
#include <thread>
#include <unordered_map>

#include "obs/json.h"

namespace mdseq {

namespace {

using Clock = std::chrono::steady_clock;

double UnixSeconds() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

/// The deterministic cascade counters a diff compares. Wall times and the
/// buffer-pool hit/miss split are deliberately absent — both vary between
/// runs of identical work.
struct CounterRow {
  const char* name;
  uint64_t (*get)(const SearchStats&);
};

constexpr CounterRow kCounterRows[] = {
    {"node_accesses", [](const SearchStats& s) { return s.node_accesses; }},
    {"phase2_candidates",
     [](const SearchStats& s) {
       return static_cast<uint64_t>(s.phase2_candidates);
     }},
    {"phase3_matches",
     [](const SearchStats& s) {
       return static_cast<uint64_t>(s.phase3_matches);
     }},
    {"filter_matches",
     [](const SearchStats& s) {
       return static_cast<uint64_t>(s.filter_matches);
     }},
    {"dnorm_evaluations",
     [](const SearchStats& s) {
       return static_cast<uint64_t>(s.dnorm_evaluations);
     }},
    {"query_mbrs",
     [](const SearchStats& s) { return static_cast<uint64_t>(s.query_mbrs); }},
    {"probe_abandons",
     [](const SearchStats& s) { return s.probe_abandons; }},
    {"verify_abandons",
     [](const SearchStats& s) { return s.verify_abandons; }},
    {"bytes_read", [](const SearchStats& s) { return s.bytes_read; }},
    {"prefilter_abandons",
     [](const SearchStats& s) { return s.prefilter_abandons; }},
    {"prefilter_survivors",
     [](const SearchStats& s) { return s.prefilter_survivors; }},
    {"shards_total",
     [](const SearchStats& s) {
       return static_cast<uint64_t>(s.shards_total);
     }},
    {"shards_failed",
     [](const SearchStats& s) {
       return static_cast<uint64_t>(s.shards_failed);
     }},
    {"approx_candidates_skipped",
     [](const SearchStats& s) { return s.approx_candidates_skipped; }},
};

/// Appends "name: a -> b" rows for every diverging counter; returns true
/// when any diverged.
bool DiffStats(const SearchStats& a, const SearchStats& b,
               const char* prefix, std::vector<std::string>* rows) {
  bool differ = false;
  for (const CounterRow& row : kCounterRows) {
    const uint64_t va = row.get(a);
    const uint64_t vb = row.get(b);
    if (va == vb) continue;
    differ = true;
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer), "%s%s: %" PRIu64 " -> %" PRIu64,
                  prefix, row.name, va, vb);
    rows->push_back(buffer);
  }
  return differ;
}

}  // namespace

ReplayReport RunReplay(QueryEngine* engine,
                       const std::vector<WorkloadQueryRecord>& recording,
                       const ReplayOptions& options) {
  ReplayReport report;
  if (recording.empty()) return report;

  const Clock::time_point start = Clock::now();
  const double base_arrival = recording.front().arrival_unix;
  const double speed = options.speed > 0 ? options.speed : 1.0;

  std::vector<std::future<QueryOutcome>> futures;
  futures.reserve(recording.size());
  for (const WorkloadQueryRecord& record : recording) {
    if (options.pace == ReplayOptions::Pace::kRecorded) {
      const double offset_s =
          (record.arrival_unix - base_arrival) / speed;
      const Clock::time_point target =
          start + std::chrono::nanoseconds(
                      static_cast<int64_t>(offset_s * 1e9));
      std::this_thread::sleep_until(target);
    }
    QueryOptions query_options;
    query_options.epsilon = record.epsilon;
    query_options.verified = record.verified;
    query_options.tenant = record.tenant;
    if (options.apply_deadlines && record.deadline_us > 0) {
      query_options.deadline = std::chrono::microseconds(record.deadline_us);
    }
    futures.push_back(engine->Submit(record.query, query_options));
  }

  const SearchOptions& search = engine->search_options();
  for (size_t i = 0; i < futures.size(); ++i) {
    const WorkloadQueryRecord& source = recording[i];
    QueryOutcome outcome = futures[i].get();
    WorkloadQueryRecord replayed;
    replayed.id = source.id;
    replayed.completion_unix = UnixSeconds();
    replayed.arrival_unix =
        replayed.completion_unix -
        static_cast<double>(outcome.latency.count()) / 1e6;
    replayed.outcome = static_cast<uint8_t>(outcome.status);
    replayed.epsilon = source.epsilon;
    replayed.verified = source.verified;
    replayed.opt_prefilter = search.prefilter;
    replayed.opt_composite = search.composite_bound;
    replayed.approximate =
        search.max_candidates > 0 || search.max_epsilon_rounds > 0;
    replayed.opt_max_candidates = search.max_candidates;
    replayed.opt_max_epsilon_rounds = search.max_epsilon_rounds;
    replayed.tenant = source.tenant;
    replayed.deadline_us = options.apply_deadlines ? source.deadline_us : 0;
    replayed.signature = WorkloadQuerySignature(
        source.query.View(), source.epsilon, source.verified, search);
    replayed.result_digest =
        ResultDigest(outcome.result.matches, source.verified);
    replayed.matches = outcome.result.matches.size();
    replayed.interrupted = outcome.result.interrupted;
    replayed.stats = outcome.result.stats;
    replayed.shards = outcome.result.shard_breakdown;
    replayed.query = source.query;
    report.records.push_back(std::move(replayed));
    ++report.replayed;
    if (outcome.status == QueryStatus::kOk) ++report.ok;
  }
  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          Clock::now() - start)
          .count();
  return report;
}

ReplayDiff DiffWorkloads(const std::vector<WorkloadQueryRecord>& a,
                         const std::vector<WorkloadQueryRecord>& b) {
  ReplayDiff diff;
  std::unordered_map<uint64_t, const WorkloadQueryRecord*> by_id;
  by_id.reserve(b.size());
  for (const WorkloadQueryRecord& record : b) {
    by_id.emplace(record.id, &record);
  }
  uint64_t matched = 0;
  for (const WorkloadQueryRecord& ra : a) {
    auto it = by_id.find(ra.id);
    if (it == by_id.end()) {
      ++diff.unmatched;
      continue;
    }
    ++matched;
    const WorkloadQueryRecord& rb = *it->second;
    ++diff.compared;

    ReplayDivergence d;
    d.id = ra.id;
    d.outcome_a = QueryStatusName(static_cast<QueryStatus>(ra.outcome));
    d.outcome_b = QueryStatusName(static_cast<QueryStatus>(rb.outcome));
    d.outcome_differs = ra.outcome != rb.outcome;
    d.digest_a = ra.result_digest;
    d.digest_b = rb.result_digest;
    d.matches_a = ra.matches;
    d.matches_b = rb.matches;
    // Approximate records carry no digest contract: the budget cut position
    // is deterministic within one build but free to move across builds, so
    // only the budget counters (which include the skip count) are diffed.
    const bool approximate = ra.approximate || rb.approximate;
    d.digest_differs =
        !approximate && ra.result_digest != rb.result_digest;
    d.counters_differ = DiffStats(ra.stats, rb.stats, "", &d.counter_diffs);

    // Per-shard attribution: pair shard slices by shard id and flag any
    // whose digest or deterministic counters moved.
    std::unordered_map<uint32_t, const ShardQueryStats*> shards_b;
    for (const ShardQueryStats& shard : rb.shards) {
      shards_b.emplace(shard.shard, &shard);
    }
    for (const ShardQueryStats& sa : ra.shards) {
      auto sit = shards_b.find(sa.shard);
      if (sit == shards_b.end()) {
        d.diverging_shards.push_back(sa.shard);
        continue;
      }
      const ShardQueryStats& sb = *sit->second;
      char prefix[32];
      std::snprintf(prefix, sizeof(prefix), "shard %u ", sa.shard);
      bool shard_differs =
          DiffStats(sa.stats, sb.stats, prefix, &d.counter_diffs);
      if (!approximate && sa.digest != sb.digest) {
        shard_differs = true;
        char buffer[160];
        std::snprintf(buffer, sizeof(buffer),
                      "shard %u digest: %" PRIu64 " -> %" PRIu64, sa.shard,
                      sa.digest, sb.digest);
        d.counter_diffs.push_back(buffer);
      }
      if (shard_differs) {
        d.diverging_shards.push_back(sa.shard);
        d.counters_differ = d.counters_differ || shard_differs;
      }
    }

    if (d.outcome_differs) ++diff.outcome_divergences;
    if (d.digest_differs) ++diff.digest_divergences;
    if (d.counters_differ) ++diff.counter_divergences;
    if (d.outcome_differs || d.digest_differs || d.counters_differ) {
      diff.divergences.push_back(std::move(d));
    }
  }
  diff.unmatched += static_cast<uint64_t>(b.size()) - matched;
  return diff;
}

std::string ReplayDiffJson(const ReplayDiff& diff) {
  std::string out = "{\n  \"summary\": {";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "\"compared\": %" PRIu64 ", \"unmatched\": %" PRIu64
                ", \"outcome_divergences\": %" PRIu64
                ", \"digest_divergences\": %" PRIu64
                ", \"counter_divergences\": %" PRIu64 ", \"clean\": %s",
                diff.compared, diff.unmatched, diff.outcome_divergences,
                diff.digest_divergences, diff.counter_divergences,
                diff.clean() ? "true" : "false");
  out.append(buffer);
  out.append("},\n  \"divergences\": [");
  bool first = true;
  for (const ReplayDivergence& d : diff.divergences) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buffer, sizeof(buffer),
                  "\n    {\"id\": %" PRIu64
                  ", \"outcome_a\": \"%s\", \"outcome_b\": \"%s\""
                  ", \"digest_a\": %" PRIu64 ", \"digest_b\": %" PRIu64
                  ", \"matches_a\": %" PRIu64 ", \"matches_b\": %" PRIu64
                  ", \"digest_differs\": %s, \"counters_differ\": %s",
                  d.id, d.outcome_a, d.outcome_b, d.digest_a, d.digest_b,
                  d.matches_a, d.matches_b,
                  d.digest_differs ? "true" : "false",
                  d.counters_differ ? "true" : "false");
    out.append(buffer);
    out.append(", \"diverging_shards\": [");
    for (size_t i = 0; i < d.diverging_shards.size(); ++i) {
      if (i > 0) out.append(", ");
      std::snprintf(buffer, sizeof(buffer), "%u", d.diverging_shards[i]);
      out.append(buffer);
    }
    out.append("], \"counter_diffs\": [");
    for (size_t i = 0; i < d.counter_diffs.size(); ++i) {
      if (i > 0) out.append(", ");
      out.append(obs::JsonQuote(d.counter_diffs[i]));
    }
    out.append("]}");
  }
  out.append(first ? "]\n}\n" : "\n  ]\n}\n");
  return out;
}

}  // namespace mdseq
