#ifndef MDSEQ_ENGINE_QUERY_ENGINE_H_
#define MDSEQ_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/search.h"
#include "engine/active_query_registry.h"
#include "engine/cancellation.h"
#include "engine/latency_histogram.h"
#include "engine/slow_query_log.h"
#include "engine/thread_pool.h"
#include "engine/workload_recorder.h"
#include "geom/sequence.h"
#include "ingest/live_database.h"
#include "obs/http/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/result_cache.h"
#include "serve/tenant_queue.h"
#include "storage/buffer_pool.h"
#include "storage/disk_database.h"

namespace mdseq {

class Coordinator;

/// Terminal state of a submitted query.
enum class QueryStatus {
  /// Ran to completion; `result` is the full search result.
  kOk,
  /// Refused at admission (queue full under the reject policy, or engine
  /// shut down); never ran.
  kRejected,
  /// Evicted from the queue by a newer query (shed-oldest policy); never
  /// ran.
  kShed,
  /// Deadline passed — either while still queued (never ran) or mid-search
  /// (`result` is partial, `result.interrupted` is true).
  kDeadlineExpired,
  /// Cancellation token fired — either while queued or mid-search.
  kCancelled,
};

/// Stable lowercase name ("ok", "rejected", "shed", "deadline_expired",
/// "cancelled") for logs and introspection endpoints.
const char* QueryStatusName(QueryStatus status);

/// What the submitter's future resolves to.
struct QueryOutcome {
  QueryStatus status = QueryStatus::kOk;
  /// Full result for kOk; partial (possibly empty) otherwise.
  SearchResult result;
  /// Submit-to-completion wall time, including queue wait.
  std::chrono::microseconds latency{0};
};

/// Per-query knobs.
struct QueryOptions {
  /// Similarity threshold (the paper's epsilon).
  double epsilon = 0.1;
  /// Run the filter-and-refine `SearchVerified` instead of the paper's
  /// filter-only `Search`.
  bool verified = false;
  /// Budget from submission; zero means none. Checked at dequeue and
  /// between pruning phases.
  std::chrono::microseconds deadline{0};
  /// Optional cooperative cancellation; see `CancellationSource`.
  CancellationToken cancel;
  /// Admission class index (into `EngineOptions::tenant_classes`);
  /// out-of-range ids fall into class 0. Ignored when no classes are
  /// configured.
  uint32_t tenant = 0;
};

/// Engine-wide configuration.
struct EngineOptions {
  /// Worker threads; 0 means one per hardware thread.
  size_t num_threads = 0;
  /// Admission queue capacity.
  size_t queue_capacity = 1024;
  /// What `Submit` does when the queue is full.
  OverloadPolicy policy = OverloadPolicy::kBlock;
  /// Search knobs shared by every query (composite bound etc.).
  SearchOptions search;
  /// Start with the workers parked until `Start` — lets tests (and staged
  /// deployments) fill the queue before service begins.
  bool start_suspended = false;
  /// Optional metrics sink: when set, the engine registers `mdseq_*`
  /// counters/gauges/histograms there and updates them per query. The
  /// registry must outlive the engine. Null = no metric overhead beyond
  /// the engine's own atomics.
  obs::MetricsRegistry* metrics = nullptr;
  /// When non-zero, keep a per-query phase trace for up to this many
  /// completed queries (bounded, sharded per worker; each full shard evicts
  /// its oldest trace, counted in `mdseq_traces_dropped_total`). Drain with
  /// `TakeTraces` or probe live via `/debug/trace?id=`. Zero = tracing off,
  /// queries run with a null trace sink (inlined no-op).
  size_t trace_capacity = 0;
  /// Live introspection HTTP server (see src/obs/http/ and
  /// docs/observability.md): -1 (default) = no server, 0 = bind an
  /// ephemeral loopback port (read it back via `introspection_port()`),
  /// 1..65535 = bind that port. When enabled without a `metrics` registry
  /// the engine creates and owns one so `/metrics` always has data.
  int listen_port = -1;
  /// Served queries at or above this latency land in the slow-query ring
  /// (`/debug/slow`) and the structured log. Zero disables the ring.
  std::chrono::microseconds slow_query_threshold{0};
  /// Entries kept in the slow-query ring (oldest evicted first).
  size_t slow_query_capacity = 64;
  /// Write-admission knob (live databases only): ingest batches queued or
  /// running at once. A `SubmitIngest` beyond this resolves immediately
  /// with `rejected == true`, so a slow checkpoint back-pressures writers
  /// instead of growing an unbounded ingest backlog behind the queries.
  size_t max_pending_ingest = 4;
  /// Workload flight recorder (see src/engine/workload_recorder.h): when
  /// non-empty, every completed query — served or refused — is appended to
  /// this rotating CRC-framed log for replay (`mdseq_cli replay`), subject
  /// to the sampling knob below. Empty = recorder off; the completion path
  /// then pays one pointer test.
  std::string workload_log_path;
  /// Record every Nth query (1 = all).
  uint64_t workload_sample_every = 1;
  /// Rotation byte budget of the workload log (0 = never rotate).
  uint64_t workload_max_bytes = 64ull << 20;
  /// Records mirrored in memory for `/debug/workload`.
  size_t workload_recent_capacity = 64;
  /// Result cache byte budget; 0 (default) disables the cache entirely —
  /// exact serving then pays one null-pointer test. Entries are keyed on
  /// the canonical workload signature and stamped with the live database's
  /// snapshot epoch (see docs/serving.md).
  size_t cache_bytes = 0;
  /// Optional per-entry TTL (0 = none) and the cache's internal shard
  /// count (concurrency, not placement).
  std::chrono::milliseconds cache_ttl{0};
  size_t cache_shards = 8;
  /// Per-tenant admission classes for the worker pool. Empty (default)
  /// keeps the plain FIFO; non-empty enables weighted fair pick with
  /// per-class quotas and shed-by-class (see docs/serving.md).
  std::vector<TenantClassSpec> tenant_classes;
};

/// One ingest operation: points for an existing open sequence, or — with
/// `sequence_id == kNewSequence` — a freshly opened one. `seal` marks the
/// sequence complete after the append.
struct IngestOp {
  /// Sentinel: open a new sequence for these points.
  static constexpr uint64_t kNewSequence = ~0ull;

  uint64_t sequence_id = kNewSequence;
  Sequence points{1};
  bool seal = false;
};

/// A batch of ingest operations applied and group-committed as one unit
/// (one WAL fsync); optionally followed by a checkpoint.
struct IngestBatch {
  std::vector<IngestOp> ops;
  bool checkpoint = false;
};

/// What a `SubmitIngest` future resolves to.
struct IngestOutcome {
  /// True when the write-admission knob (or shutdown/shedding) refused the
  /// batch; nothing was applied then.
  bool rejected = false;
  /// All operations applied and the commit (and checkpoint, if requested)
  /// reached the disk.
  bool ok = false;
  /// Ids assigned to `kNewSequence` ops, in op order.
  std::vector<uint64_t> sequence_ids;
  /// Points acknowledged by this batch's commit.
  uint64_t points = 0;
  /// Submit-to-durable wall time, including queue wait.
  std::chrono::microseconds latency{0};
};

/// What `GET /healthz` reports: liveness and the capacity picture.
struct EngineHealth {
  /// False once `Shutdown` began — a load balancer should drain.
  bool accepting = false;
  size_t workers = 0;
  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  uint64_t submitted = 0;
  uint64_t served = 0;
  size_t active_queries = 0;
  /// Process start time (Unix seconds, set at engine construction) and the
  /// uptime derived from it at snapshot time — the `/healthz` liveness age
  /// and the `mdseq_uptime_seconds` gauge.
  double start_unix_ts = 0.0;
  double uptime_seconds = 0.0;
  /// Buffer-pool occupancy; all-zero for in-memory databases.
  bool disk_backed = false;
  BufferPoolHealth pool;
};

/// Point-in-time copy of the engine-wide counters. The per-phase totals
/// aggregate the `SearchStats` of every executed query, so they map
/// one-to-one onto the paper's evaluation: `node_accesses` is the Phase-2
/// index cost, `phase2_candidates`/`phase3_matches` are |ASmbr|/|ASnorm|,
/// and `dnorm_evaluations` counts the Phase-3 Dnorm work.
struct EngineStats {
  uint64_t submitted = 0;
  uint64_t served = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t deadline_expired = 0;
  uint64_t cancelled = 0;

  uint64_t node_accesses = 0;
  uint64_t phase2_candidates = 0;
  uint64_t phase3_matches = 0;
  uint64_t dnorm_evaluations = 0;

  /// Buffer-pool attribution across all executed queries (disk engines;
  /// zero for in-memory databases).
  uint64_t page_hits = 0;
  uint64_t page_misses = 0;

  /// Per-phase wall time summed over all executed queries, nanoseconds.
  /// `interval_assembly_ns` is a sub-slice of `second_pruning_ns`.
  uint64_t partition_ns = 0;
  uint64_t first_pruning_ns = 0;
  uint64_t second_pruning_ns = 0;
  uint64_t interval_assembly_ns = 0;
  uint64_t verify_ns = 0;

  /// Coordinator engines only (see src/shard): total time blocked on the
  /// slowest shard and total merge time, summed over executed queries.
  uint64_t fanout_wait_ns = 0;
  uint64_t merge_ns = 0;

  /// Traces not kept because the trace store was full.
  uint64_t traces_dropped = 0;

  /// Latency of served queries (submit to completion), microseconds.
  uint64_t p50_latency_us = 0;
  uint64_t p99_latency_us = 0;
  uint64_t max_latency_us = 0;
  double mean_latency_us = 0.0;
};

/// The concurrent query front end: owns a fixed worker pool fed by a
/// bounded admission queue and runs the paper's three-phase search against
/// one shared read-only database — in-memory (`SequenceDatabase`) or
/// disk-resident (`DiskDatabase`). Queries are submitted as futures;
/// batches fan out across the workers. Per-query `SearchStats` are
/// aggregated into engine-wide atomic counters and a lock-free latency
/// histogram.
///
/// The database must outlive the engine and must not be mutated while the
/// engine is running (the hot path relies on the const read-only query
/// path being race-free).
class QueryEngine {
 public:
  QueryEngine(const SequenceDatabase* database,
              const EngineOptions& options = EngineOptions());
  QueryEngine(const DiskDatabase* database,
              const EngineOptions& options = EngineOptions());
  /// Live (ingest-capable) engine: queries run against the database's
  /// published snapshots, and `SubmitIngest` is enabled. The engine does
  /// not own the database; it must outlive the engine.
  QueryEngine(LiveDatabase* database,
              const EngineOptions& options = EngineOptions());
  /// Coordinator (sharded) engine: queries fan out across the
  /// coordinator's shards and merge under its failure policy. The
  /// coordinator (and everything behind it) must outlive the engine;
  /// `SubmitIngest` is disabled. When the engine has a metrics registry it
  /// also registers the coordinator's `mdseq_shard_*` metrics, and the
  /// introspection server gains `/debug/shards`.
  QueryEngine(Coordinator* coordinator,
              const EngineOptions& options = EngineOptions());
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Submits one query. The future always resolves — with kOk on success,
  /// or with the admission/cancellation status otherwise. Under the kBlock
  /// policy this call blocks while the queue is full (backpressure).
  std::future<QueryOutcome> Submit(Sequence query,
                                   const QueryOptions& options);

  /// Fans a batch out across the workers: one future per query, same
  /// options for all. Futures arrive in input order.
  std::vector<std::future<QueryOutcome>> SubmitBatch(
      std::vector<Sequence> queries, const QueryOptions& options);

  /// Submits one ingest batch (live engines only — returns an immediate
  /// `rejected` outcome otherwise). Batches share the worker pool with
  /// queries; at most `EngineOptions::max_pending_ingest` are queued or
  /// running at once, and execution is serialized so the WAL sees one
  /// group commit per batch. The future resolves once the batch is
  /// durable (commit fsynced) or refused.
  std::future<IngestOutcome> SubmitIngest(IngestBatch batch);

  /// Releases suspended workers (see `EngineOptions::start_suspended`).
  void Start();

  /// Stops admission, drains queries already accepted, joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  EngineStats stats() const;
  size_t queue_depth() const { return pool_->queue_depth(); }
  size_t num_threads() const { return pool_->num_threads(); }

  /// Drains and returns the per-query traces collected so far (empty when
  /// `EngineOptions::trace_capacity` is 0). Safe to call while queries are
  /// running; traces of in-flight queries land in a later drain.
  std::vector<obs::Trace> TakeTraces();

  /// Copies (without draining) the stored traces of one query — the
  /// `/debug/trace?id=` path. Empty when tracing is off or nothing matches.
  std::vector<obs::Trace> SnapshotTraces(uint64_t query_id) const;

  /// Every query currently between submission and completion, with its
  /// live phase/candidate counters. Always available (the registry is not
  /// gated on the introspection server).
  std::vector<ActiveQueryInfo> ActiveQueries() const {
    return active_.Snapshot();
  }

  /// Fires the engine-side cancellation flag of an in-flight query (the
  /// `POST /debug/cancel` path — independent of the submitter's own
  /// token). False when the id is not in flight.
  bool CancelQuery(uint64_t id) { return active_.Cancel(id); }

  /// Recent slow queries, newest first; empty when
  /// `EngineOptions::slow_query_threshold` is zero.
  std::vector<SlowQueryRecord> SlowQueries() const;

  /// Liveness/capacity snapshot for `/healthz`.
  EngineHealth Health() const;

  /// Bound port of the embedded introspection server, or -1 when disabled
  /// (including bind failure at construction).
  int introspection_port() const;

  /// The registry the engine reports into: the caller-supplied one, the
  /// engine-owned one created for the introspection server, or null.
  obs::MetricsRegistry* metrics_registry() const { return registry_; }

  /// The live database, or null for read-only engines (`/debug/ingest`).
  LiveDatabase* live_database() const { return live_database_; }

  /// The shard coordinator, or null for single-database engines
  /// (`/debug/shards`).
  Coordinator* coordinator() const { return coordinator_; }

  /// Copies the current page-file and buffer-pool counters into their
  /// `mdseq_page_file_*` / `mdseq_buffer_pool_resident_pages` etc. gauges.
  /// Called by the `/metrics` handler so every scrape sees fresh storage
  /// numbers; a no-op for in-memory engines or without a registry.
  void RefreshStorageGauges();

  /// Refreshes every scrape-time gauge: `mdseq_uptime_seconds` plus the
  /// storage gauges above. The `/metrics` handler calls this.
  void RefreshScrapeGauges();

  /// The workload flight recorder, or null when
  /// `EngineOptions::workload_log_path` is empty (`/debug/workload`).
  WorkloadRecorder* workload_recorder() const { return workload_.get(); }

  /// The engine's `SearchOptions` (recorded per query by the flight
  /// recorder so a replay can pin the same knobs).
  const SearchOptions& search_options() const { return search_options_; }

  /// The result cache, or null when `EngineOptions::cache_bytes` is 0
  /// (`/debug/cache`).
  ResultCache* result_cache() const { return cache_.get(); }

  /// Per-tenant-class accounting; empty when no classes are configured
  /// (`/debug/tenants` and the serve-bench report).
  std::vector<TenantClassStats> TenantStats() const {
    return pool_->TenantStats();
  }

 private:
  struct Pending;
  struct PendingIngest;
  struct Metrics;

  void InstallObservers(const EngineOptions& options);
  void StartIntrospection(const EngineOptions& options);
  void Execute(const std::shared_ptr<Pending>& pending);
  void Finish(const std::shared_ptr<Pending>& pending, QueryStatus status,
              SearchResult result);
  SearchResult RunSearch(SequenceView query, const QueryOptions& options,
                         const SearchControl& control) const;
  /// Snapshot epoch cache entries are stamped with: the live database's
  /// published-snapshot version, or 0 for immutable backends.
  uint64_t SnapshotStamp() const {
    return live_database_ != nullptr ? live_database_->snapshot_version()
                                     : 0;
  }
  /// Sequences visible to queries right now — the first pruning stage's
  /// input size, whichever backend the engine fronts.
  uint64_t DatabaseSequences() const;

  void ExecuteIngest(const std::shared_ptr<PendingIngest>& pending);
  void FinishIngest(const std::shared_ptr<PendingIngest>& pending,
                    IngestOutcome outcome);

  const SequenceDatabase* memory_database_ = nullptr;
  const DiskDatabase* disk_database_ = nullptr;
  LiveDatabase* live_database_ = nullptr;
  Coordinator* coordinator_ = nullptr;
  std::unique_ptr<SimilaritySearch> memory_search_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> accepting_{true};

  /// Ingest path (live engines): the admission knob, the batch serializer
  /// (one WAL group commit per batch; also makes the before/after Status()
  /// delta computation race-free), and the engine-wide totals.
  size_t max_pending_ingest_ = 0;
  std::mutex ingest_mutex_;
  std::atomic<size_t> ingest_pending_{0};
  std::atomic<uint64_t> ingest_batches_{0};
  std::atomic<uint64_t> ingest_points_{0};
  std::atomic<uint64_t> ingest_rejected_{0};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> node_accesses_{0};
  std::atomic<uint64_t> phase2_candidates_{0};
  std::atomic<uint64_t> phase3_matches_{0};
  std::atomic<uint64_t> dnorm_evaluations_{0};
  std::atomic<uint64_t> page_hits_{0};
  std::atomic<uint64_t> page_misses_{0};
  std::atomic<uint64_t> partition_ns_{0};
  std::atomic<uint64_t> first_pruning_ns_{0};
  std::atomic<uint64_t> second_pruning_ns_{0};
  std::atomic<uint64_t> interval_assembly_ns_{0};
  std::atomic<uint64_t> verify_ns_{0};
  std::atomic<uint64_t> fanout_wait_ns_{0};
  std::atomic<uint64_t> merge_ns_{0};
  LatencyHistogram latency_;

  /// Handles into the registry; null when none installed.
  std::unique_ptr<Metrics> metrics_;
  /// Bounded per-query trace collection; null when tracing is off.
  std::unique_ptr<obs::TraceStore> traces_;

  /// In-flight query tracking (always on) and the slow-query ring
  /// (threshold-gated).
  ActiveQueryRegistry active_;
  std::unique_ptr<SlowQueryLog> slow_;
  /// Workload flight recorder; null when the path knob is empty.
  std::unique_ptr<WorkloadRecorder> workload_;
  /// Result cache; null when `EngineOptions::cache_bytes` is 0, so the
  /// disabled path costs one pointer test.
  std::unique_ptr<ResultCache> cache_;
  /// Scrape-time sync state: registry counters advance by the delta since
  /// the last scrape of the cache's and tenant queue's internal counters.
  std::mutex scrape_mutex_;
  ResultCache::Stats cache_scraped_;
  uint64_t qos_shed_scraped_ = 0;
  uint64_t qos_rejected_scraped_ = 0;
  /// Engine-wide search knobs (copied from `EngineOptions::search`).
  SearchOptions search_options_;
  /// Unix seconds at construction — `/healthz` start time and the
  /// `mdseq_uptime_seconds` base.
  double start_unix_ts_ = 0.0;
  /// Registry the engine reports into — `owned_registry_` backs it when the
  /// caller enabled the server without supplying one.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  /// The embedded introspection server; null when `listen_port` is -1 or
  /// the bind failed.
  std::unique_ptr<obs::http::HttpServer> server_;
};

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_QUERY_ENGINE_H_
