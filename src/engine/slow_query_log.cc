#include "engine/slow_query_log.h"

#include <algorithm>

namespace mdseq {

SlowQueryLog::SlowQueryLog(std::chrono::microseconds threshold,
                           size_t capacity)
    : threshold_(threshold), capacity_(std::max<size_t>(1, capacity)) {}

void SlowQueryLog::Record(SlowQueryRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() >= capacity_) ring_.pop_front();
  ring_.push_back(std::move(record));
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SlowQueryRecord>(ring_.rbegin(), ring_.rend());
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

}  // namespace mdseq
