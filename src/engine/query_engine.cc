#include "engine/query_engine.h"

#include <utility>

#include "util/check.h"

namespace mdseq {

namespace {

using Clock = std::chrono::steady_clock;

ThreadPool::Options PoolOptions(const EngineOptions& options) {
  ThreadPool::Options pool;
  pool.num_threads = options.num_threads;
  pool.queue_capacity = options.queue_capacity;
  pool.policy = options.policy;
  pool.start_suspended = options.start_suspended;
  return pool;
}

}  // namespace

/// Everything a queued query carries: the payload, its promise, and the
/// timing/cancellation context. Shared between the run and shed callbacks
/// of the pool task; exactly one of them completes the promise.
struct QueryEngine::Pending {
  explicit Pending(Sequence q) : query(std::move(q)) {}

  Sequence query;
  QueryOptions options;
  Clock::time_point submit_time;
  Clock::time_point deadline = Clock::time_point::max();
  std::promise<QueryOutcome> promise;
};

QueryEngine::QueryEngine(const SequenceDatabase* database,
                         const EngineOptions& options)
    : memory_database_(database),
      memory_search_(
          std::make_unique<SimilaritySearch>(database, options.search)),
      pool_(std::make_unique<ThreadPool>(PoolOptions(options))) {
  MDSEQ_CHECK(database != nullptr);
}

QueryEngine::QueryEngine(const DiskDatabase* database,
                         const EngineOptions& options)
    : disk_database_(database),
      pool_(std::make_unique<ThreadPool>(PoolOptions(options))) {
  MDSEQ_CHECK(database != nullptr);
  MDSEQ_CHECK(database->valid());
}

QueryEngine::~QueryEngine() { Shutdown(); }

std::future<QueryOutcome> QueryEngine::Submit(Sequence query,
                                              const QueryOptions& options) {
  auto pending = std::make_shared<Pending>(std::move(query));
  pending->options = options;
  pending->submit_time = Clock::now();
  if (options.deadline.count() > 0) {
    pending->deadline = pending->submit_time + options.deadline;
  }
  std::future<QueryOutcome> future = pending->promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  PoolTask task;
  task.run = [this, pending] { Execute(pending); };
  task.on_shed = [this, pending] {
    Finish(pending, QueryStatus::kShed, SearchResult());
  };
  if (pool_->Submit(std::move(task)) == AdmitResult::kRejected) {
    Finish(pending, QueryStatus::kRejected, SearchResult());
  }
  return future;
}

std::vector<std::future<QueryOutcome>> QueryEngine::SubmitBatch(
    std::vector<Sequence> queries, const QueryOptions& options) {
  std::vector<std::future<QueryOutcome>> futures;
  futures.reserve(queries.size());
  for (Sequence& query : queries) {
    futures.push_back(Submit(std::move(query), options));
  }
  return futures;
}

void QueryEngine::Start() { pool_->Start(); }

void QueryEngine::Shutdown() { pool_->Shutdown(); }

SearchResult QueryEngine::RunSearch(SequenceView query,
                                    const QueryOptions& options,
                                    const SearchControl& control) const {
  if (memory_database_ != nullptr) {
    return options.verified
               ? memory_search_->SearchVerified(query, options.epsilon,
                                                control)
               : memory_search_->Search(query, options.epsilon, control);
  }
  return options.verified
             ? disk_database_->SearchVerified(query, options.epsilon,
                                              control)
             : disk_database_->Search(query, options.epsilon, control);
}

void QueryEngine::Execute(const std::shared_ptr<Pending>& pending) {
  // Admission-to-execution checkpoint: a query that waited out its budget
  // (or was cancelled while queued) is dropped before any search work.
  if (pending->options.cancel.cancelled()) {
    Finish(pending, QueryStatus::kCancelled, SearchResult());
    return;
  }
  if (Clock::now() >= pending->deadline) {
    Finish(pending, QueryStatus::kDeadlineExpired, SearchResult());
    return;
  }

  SearchControl control;
  control.cancel = pending->options.cancel.flag();
  control.deadline = pending->deadline;
  SearchResult result =
      RunSearch(pending->query.View(), pending->options, control);

  QueryStatus status = QueryStatus::kOk;
  if (result.interrupted) {
    // Cancellation wins the tie: it is the submitter's explicit signal.
    status = pending->options.cancel.cancelled()
                 ? QueryStatus::kCancelled
                 : QueryStatus::kDeadlineExpired;
  }
  Finish(pending, status, std::move(result));
}

void QueryEngine::Finish(const std::shared_ptr<Pending>& pending,
                         QueryStatus status, SearchResult result) {
  switch (status) {
    case QueryStatus::kOk:
      served_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kDeadlineExpired:
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  // Work performed is charged to the engine totals even for interrupted
  // queries — the counters measure load, not success.
  node_accesses_.fetch_add(result.stats.node_accesses,
                           std::memory_order_relaxed);
  phase2_candidates_.fetch_add(result.stats.phase2_candidates,
                               std::memory_order_relaxed);
  phase3_matches_.fetch_add(result.stats.phase3_matches,
                            std::memory_order_relaxed);
  dnorm_evaluations_.fetch_add(result.stats.dnorm_evaluations,
                               std::memory_order_relaxed);

  QueryOutcome outcome;
  outcome.status = status;
  outcome.result = std::move(result);
  outcome.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - pending->submit_time);
  if (status == QueryStatus::kOk) {
    latency_.Record(static_cast<uint64_t>(outcome.latency.count()));
  }
  pending->promise.set_value(std::move(outcome));
}

EngineStats QueryEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.node_accesses = node_accesses_.load(std::memory_order_relaxed);
  s.phase2_candidates = phase2_candidates_.load(std::memory_order_relaxed);
  s.phase3_matches = phase3_matches_.load(std::memory_order_relaxed);
  s.dnorm_evaluations = dnorm_evaluations_.load(std::memory_order_relaxed);
  s.p50_latency_us = latency_.PercentileMicros(50.0);
  s.p99_latency_us = latency_.PercentileMicros(99.0);
  s.max_latency_us = latency_.MaxMicros();
  s.mean_latency_us = latency_.MeanMicros();
  return s;
}

}  // namespace mdseq
