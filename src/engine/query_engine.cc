#include "engine/query_engine.h"

#include <ctime>
#include <optional>
#include <utility>

#include "engine/introspection.h"
#include "obs/log.h"
#include "shard/coordinator.h"
#include "util/check.h"

namespace mdseq {

namespace {

using Clock = std::chrono::steady_clock;

double UnixNowSeconds() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

/// Bucket ladder for pruning survivor-ratio histograms: ratios live in
/// [0, 1] and the interesting resolution is near 0 (strong pruning).
std::vector<double> SurvivorRatioBounds() {
  return {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
}

ThreadPool::Options PoolOptions(const EngineOptions& options) {
  ThreadPool::Options pool;
  pool.num_threads = options.num_threads;
  pool.queue_capacity = options.queue_capacity;
  pool.policy = options.policy;
  pool.start_suspended = options.start_suspended;
  pool.tenant_classes = options.tenant_classes;
  return pool;
}

}  // namespace

const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kRejected:
      return "rejected";
    case QueryStatus::kShed:
      return "shed";
    case QueryStatus::kDeadlineExpired:
      return "deadline_expired";
    case QueryStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// Everything a queued query carries: the payload, its promise, and the
/// timing/cancellation context. Shared between the run and shed callbacks
/// of the pool task; exactly one of them completes the promise.
struct QueryEngine::Pending {
  explicit Pending(Sequence q) : query(std::move(q)) {}

  Sequence query;
  QueryOptions options;
  /// Result-cache context (cache-enabled engines only): the canonical
  /// signature key, the snapshot stamp read before execution, and whether
  /// this query leads the single-flight for its key.
  uint64_t cache_key = 0;
  uint64_t cache_stamp = 0;
  bool cache_probe = false;
  bool cache_leader = false;
  /// Engine-assigned, 1-based submission ordinal; labels the query's trace.
  uint64_t id = 0;
  Clock::time_point submit_time;
  Clock::time_point deadline = Clock::time_point::max();
  /// This query's entry in the active-query registry, and a token on its
  /// engine-side cancellation flag (fired by `CancelQuery`).
  std::shared_ptr<ActiveQuery> active;
  CancellationToken engine_cancel;
  std::promise<QueryOutcome> promise;
};

/// One queued ingest batch: its payload, promise, and submit time. The
/// run and shed callbacks of the pool task share it; exactly one of them
/// completes the promise.
struct QueryEngine::PendingIngest {
  explicit PendingIngest(IngestBatch b) : batch(std::move(b)) {}

  IngestBatch batch;
  Clock::time_point submit_time;
  std::promise<IngestOutcome> promise;
};

/// Handles into the registry the engine drives per query. Registered once
/// at construction (under the registry mutex); after that every update is a
/// relaxed atomic on the handle — the hot path never locks.
struct QueryEngine::Metrics {
  obs::Counter* submitted;
  obs::Counter* served;
  obs::Counter* rejected;
  obs::Counter* shed;
  obs::Counter* deadline_expired;
  obs::Counter* cancelled;
  obs::Counter* node_accesses;
  obs::Counter* phase2_candidates;
  obs::Counter* phase3_matches;
  obs::Counter* dnorm_evaluations;
  obs::Counter* page_hits;
  obs::Counter* page_misses;
  obs::Counter* partition_ns;
  obs::Counter* first_pruning_ns;
  obs::Counter* second_pruning_ns;
  obs::Counter* interval_assembly_ns;
  obs::Counter* verify_ns;
  obs::Histogram* latency_seconds;
  obs::Gauge* queue_depth;
  obs::Gauge* queries_active;
  obs::Counter* traces_dropped;
  obs::Counter* slow_queries;

  /// Pruning-cascade accounting, driven per executed query from its
  /// `SearchStats` (see `PruningCascadeStats`).
  obs::Counter* prune_probe_abandons;
  obs::Counter* prune_verify_abandons;
  obs::Counter* prune_bytes_read;
  obs::Counter* prune_prefilter_abandons;
  obs::Histogram* prune_first_survivor_ratio;
  obs::Histogram* prune_prefilter_survivor_ratio;
  obs::Histogram* prune_second_survivor_ratio;

  /// Coordinator engines only (null otherwise): per-query fan-out wait and
  /// merge time as histograms (the counters of the same name live in the
  /// coordinator's `mdseq_shard_*` family).
  obs::Histogram* fanout_wait_seconds = nullptr;
  obs::Histogram* merge_seconds = nullptr;

  /// Ingest path (live engines only; null otherwise).
  obs::Counter* ingest_points = nullptr;
  obs::Counter* ingest_batches = nullptr;
  obs::Counter* ingest_rejected = nullptr;
  obs::Counter* wal_fsyncs = nullptr;
  obs::Histogram* checkpoint_seconds = nullptr;

  /// Result cache (cache-enabled engines only; null otherwise). Counters
  /// advance at scrape time by the delta of the cache's own counters.
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
  obs::Counter* cache_insertions = nullptr;
  obs::Counter* cache_evictions = nullptr;
  obs::Counter* cache_invalidations = nullptr;
  obs::Counter* cache_singleflight_waits = nullptr;
  obs::Gauge* cache_bytes = nullptr;
  obs::Gauge* cache_entries = nullptr;

  /// Tenant QoS (engines with admission classes only; null otherwise).
  /// The registry has no labels, so these aggregate across classes — the
  /// per-class breakdown lives in `/debug/tenants`.
  obs::Gauge* qos_classes = nullptr;
  obs::Counter* qos_class_shed = nullptr;
  obs::Counter* qos_class_rejected = nullptr;

  /// Approximate tier, driven per completed query.
  obs::Counter* approx_queries = nullptr;
  obs::Counter* approx_candidates_skipped = nullptr;

  /// Refreshed at scrape time by `RefreshScrapeGauges`.
  obs::Gauge* uptime_seconds = nullptr;

  /// Storage gauges (disk/live engines only; null otherwise), refreshed by
  /// `RefreshStorageGauges` at scrape time.
  obs::Gauge* page_file_reads = nullptr;
  obs::Gauge* page_file_writes = nullptr;
  obs::Gauge* page_file_syncs = nullptr;
  obs::Gauge* pool_hits = nullptr;
  obs::Gauge* pool_misses = nullptr;
  obs::Gauge* pool_evictions = nullptr;
};

QueryEngine::QueryEngine(const SequenceDatabase* database,
                         const EngineOptions& options)
    : memory_database_(database),
      memory_search_(
          std::make_unique<SimilaritySearch>(database, options.search)),
      pool_(std::make_unique<ThreadPool>(PoolOptions(options))) {
  MDSEQ_CHECK(database != nullptr);
  InstallObservers(options);
  StartIntrospection(options);
}

QueryEngine::QueryEngine(const DiskDatabase* database,
                         const EngineOptions& options)
    : disk_database_(database),
      pool_(std::make_unique<ThreadPool>(PoolOptions(options))) {
  MDSEQ_CHECK(database != nullptr);
  MDSEQ_CHECK(database->valid());
  InstallObservers(options);
  StartIntrospection(options);
}

QueryEngine::QueryEngine(LiveDatabase* database, const EngineOptions& options)
    : live_database_(database),
      pool_(std::make_unique<ThreadPool>(PoolOptions(options))),
      max_pending_ingest_(options.max_pending_ingest) {
  MDSEQ_CHECK(database != nullptr);
  MDSEQ_CHECK(database->valid());
  InstallObservers(options);
  StartIntrospection(options);
}

QueryEngine::QueryEngine(Coordinator* coordinator,
                         const EngineOptions& options)
    : coordinator_(coordinator),
      pool_(std::make_unique<ThreadPool>(PoolOptions(options))) {
  MDSEQ_CHECK(coordinator != nullptr);
  InstallObservers(options);
  StartIntrospection(options);
}

void QueryEngine::InstallObservers(const EngineOptions& options) {
  start_unix_ts_ = UnixNowSeconds();
  search_options_ = options.search;
  if (!options.workload_log_path.empty()) {
    WorkloadRecorder::Options workload_options;
    workload_options.path = options.workload_log_path;
    workload_options.sample_every = options.workload_sample_every;
    workload_options.max_bytes = options.workload_max_bytes;
    workload_options.recent_capacity = options.workload_recent_capacity;
    workload_ = std::make_unique<WorkloadRecorder>(workload_options);
    if (!workload_->ok()) {
      obs::Logger::Global()
          .Error("workload_log_open_failed")
          .Str("path", options.workload_log_path.c_str());
    }
  }
  if (options.trace_capacity > 0) {
    traces_ = std::make_unique<obs::TraceStore>(options.trace_capacity,
                                                pool_->num_threads());
  }
  if (options.slow_query_threshold.count() > 0) {
    slow_ = std::make_unique<SlowQueryLog>(options.slow_query_threshold,
                                           options.slow_query_capacity);
  }
  if (options.cache_bytes > 0) {
    ResultCache::Options cache_options;
    cache_options.bytes = options.cache_bytes;
    cache_options.shards = options.cache_shards;
    cache_options.ttl = options.cache_ttl;
    cache_ = std::make_unique<ResultCache>(cache_options);
  }
  registry_ = options.metrics;
  if (registry_ == nullptr && options.listen_port >= 0) {
    // The caller asked for a live /metrics endpoint without supplying a
    // registry: create and own one so the endpoint always has data.
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  if (registry_ == nullptr) return;
  obs::MetricsRegistry* reg = registry_;
  obs::RegisterBuildInfo(reg);
  if (coordinator_ != nullptr) coordinator_->RegisterMetrics(reg);
  if (workload_ != nullptr) workload_->RegisterMetrics(reg);
  auto metrics = std::make_unique<Metrics>();
  metrics->uptime_seconds = reg->GetGauge(
      "mdseq_uptime_seconds",
      "Seconds since engine construction (refreshed per scrape)");
  metrics->submitted = reg->GetCounter(
      "mdseq_queries_submitted_total", "Queries submitted to the engine");
  metrics->served = reg->GetCounter("mdseq_queries_served_total",
                                    "Queries that ran to completion");
  metrics->rejected = reg->GetCounter(
      "mdseq_queries_rejected_total", "Queries refused at admission");
  metrics->shed = reg->GetCounter("mdseq_queries_shed_total",
                                  "Queries evicted by shed-oldest");
  metrics->deadline_expired =
      reg->GetCounter("mdseq_queries_deadline_expired_total",
                      "Queries whose deadline passed");
  metrics->cancelled = reg->GetCounter("mdseq_queries_cancelled_total",
                                       "Queries cancelled by the submitter");
  metrics->node_accesses =
      reg->GetCounter("mdseq_index_node_accesses_total",
                      "R-tree node pages visited during first pruning");
  metrics->phase2_candidates =
      reg->GetCounter("mdseq_phase2_candidates_total",
                      "Candidate sequences surviving first pruning (ASmbr)");
  metrics->phase3_matches =
      reg->GetCounter("mdseq_phase3_matches_total",
                      "Sequences surviving second pruning (ASnorm)");
  metrics->dnorm_evaluations = reg->GetCounter(
      "mdseq_dnorm_evaluations_total", "Dnorm distance evaluations");
  metrics->page_hits = reg->GetCounter("mdseq_buffer_pool_hits_total",
                                       "Index page fetches served from the "
                                       "buffer pool");
  metrics->page_misses = reg->GetCounter(
      "mdseq_buffer_pool_misses_total",
      "Index page fetches that read from disk (the paper's page accesses)");
  metrics->partition_ns = reg->GetCounter(
      "mdseq_phase_partition_ns_total", "Wall time in query partitioning");
  metrics->first_pruning_ns =
      reg->GetCounter("mdseq_phase_first_pruning_ns_total",
                      "Wall time in index range search (first pruning)");
  metrics->second_pruning_ns =
      reg->GetCounter("mdseq_phase_second_pruning_ns_total",
                      "Wall time in Dnorm evaluation (second pruning)");
  metrics->interval_assembly_ns =
      reg->GetCounter("mdseq_phase_interval_assembly_ns_total",
                      "Wall time assembling solution intervals (sub-slice "
                      "of second pruning)");
  metrics->verify_ns = reg->GetCounter(
      "mdseq_phase_verify_ns_total", "Wall time in exact verification");
  metrics->latency_seconds = reg->GetHistogram(
      "mdseq_query_latency_seconds",
      "Submit-to-completion latency of served queries",
      obs::DefaultLatencyBoundsSeconds());
  metrics->queue_depth = reg->GetGauge("mdseq_engine_queue_depth",
                                       "Admission queue depth");
  metrics->queries_active = reg->GetGauge(
      "mdseq_queries_active", "Queries between submission and completion");
  metrics->traces_dropped = reg->GetCounter(
      "mdseq_traces_dropped_total",
      "Traces evicted because the trace store was full");
  metrics->slow_queries = reg->GetCounter(
      "mdseq_slow_queries_total",
      "Served queries exceeding the slow-query latency threshold");
  metrics->prune_probe_abandons = reg->GetCounter(
      "mdseq_prune_probe_abandons_total",
      "Phase-3 candidates dismissed by the min-Dmbr probe before any Dnorm "
      "evaluation");
  metrics->prune_verify_abandons = reg->GetCounter(
      "mdseq_prune_verify_abandons_total",
      "Verification distance computations abandoned early (exact distance "
      "proved beyond the threshold)");
  metrics->prune_bytes_read = reg->GetCounter(
      "mdseq_prune_bytes_read_total",
      "Raw sequence bytes materialized for exact verification");
  metrics->prune_prefilter_abandons = reg->GetCounter(
      "mdseq_prune_prefilter_abandons_total",
      "Phase-3 probes dropped by the centroid/radius prefilter before the "
      "full Dmbr evaluation");
  metrics->prune_first_survivor_ratio = reg->GetHistogram(
      "mdseq_prune_first_survivor_ratio",
      "Per-query fraction of the corpus surviving first pruning (ASmbr / "
      "database sequences)",
      SurvivorRatioBounds());
  metrics->prune_prefilter_survivor_ratio = reg->GetHistogram(
      "mdseq_prune_prefilter_survivor_ratio",
      "Per-query fraction of first-pruning candidates surviving the "
      "centroid/radius prefilter into second pruning",
      SurvivorRatioBounds());
  metrics->prune_second_survivor_ratio = reg->GetHistogram(
      "mdseq_prune_second_survivor_ratio",
      "Per-query fraction of prefilter survivors surviving the Dnorm "
      "filter",
      SurvivorRatioBounds());
  if (coordinator_ != nullptr) {
    metrics->fanout_wait_seconds = reg->GetHistogram(
        "mdseq_shard_fanout_wait_seconds",
        "Per-query time blocked waiting on the slowest shard",
        obs::DefaultLatencyBoundsSeconds());
    metrics->merge_seconds = reg->GetHistogram(
        "mdseq_shard_merge_seconds",
        "Per-query time merging shard responses",
        obs::DefaultLatencyBoundsSeconds());
  }
  if (live_database_ != nullptr) {
    metrics->ingest_points = reg->GetCounter(
        "mdseq_ingest_points_total",
        "Points acknowledged (group-committed) by the ingest path");
    metrics->ingest_batches = reg->GetCounter(
        "mdseq_ingest_batches_total", "Ingest batches executed");
    metrics->ingest_rejected = reg->GetCounter(
        "mdseq_ingest_rejected_total",
        "Ingest batches refused by the write-admission knob");
    metrics->wal_fsyncs = reg->GetCounter(
        "mdseq_wal_fsyncs_total", "WAL group-commit fsyncs issued");
    metrics->checkpoint_seconds = reg->GetHistogram(
        "mdseq_checkpoint_seconds", "Wall time of ingest checkpoints",
        obs::DefaultLatencyBoundsSeconds());
  }
  metrics->approx_queries = reg->GetCounter(
      "mdseq_approx_queries_total",
      "Served queries whose quality budget was binding (candidates "
      "skipped; the result carries a certified distance bound)");
  metrics->approx_candidates_skipped = reg->GetCounter(
      "mdseq_approx_candidates_skipped_total",
      "Phase-3 candidates skipped by the approximate-tier budget");
  if (cache_ != nullptr) {
    metrics->cache_hits = reg->GetCounter(
        "mdseq_cache_hits_total", "Result-cache hits (fresh stamp)");
    metrics->cache_misses = reg->GetCounter(
        "mdseq_cache_misses_total",
        "Result-cache misses (absent, stale, or expired entries)");
    metrics->cache_insertions = reg->GetCounter(
        "mdseq_cache_insertions_total", "Results inserted into the cache");
    metrics->cache_evictions = reg->GetCounter(
        "mdseq_cache_evictions_total",
        "Cache entries evicted by the byte budget or TTL");
    metrics->cache_invalidations = reg->GetCounter(
        "mdseq_cache_invalidations_total",
        "Cache entries invalidated by a snapshot-stamp mismatch (a commit "
        "published newer data)");
    metrics->cache_singleflight_waits = reg->GetCounter(
        "mdseq_cache_singleflight_waits_total",
        "Queries that waited behind an identical in-flight miss");
    metrics->cache_bytes = reg->GetGauge(
        "mdseq_cache_bytes",
        "Bytes held by result-cache entries (refreshed per scrape)");
    metrics->cache_entries = reg->GetGauge(
        "mdseq_cache_entries",
        "Result-cache entries (refreshed per scrape)");
  }
  if (!options.tenant_classes.empty()) {
    metrics->qos_classes = reg->GetGauge(
        "mdseq_qos_classes", "Configured tenant admission classes");
    metrics->qos_classes->Set(
        static_cast<double>(options.tenant_classes.size()));
    metrics->qos_class_shed = reg->GetCounter(
        "mdseq_qos_class_shed_total",
        "Queued queries evicted by shed-by-class, summed over classes "
        "(per-class detail in /debug/tenants)");
    metrics->qos_class_rejected = reg->GetCounter(
        "mdseq_qos_class_rejected_total",
        "Queries refused at a class's quota, summed over classes "
        "(per-class detail in /debug/tenants)");
  }
  if (disk_database_ != nullptr || live_database_ != nullptr) {
    metrics->page_file_reads = reg->GetGauge(
        "mdseq_page_file_reads",
        "Lifetime page reads of the database file (refreshed per scrape)");
    metrics->page_file_writes = reg->GetGauge(
        "mdseq_page_file_writes",
        "Lifetime page writes of the database file (refreshed per scrape)");
    metrics->page_file_syncs = reg->GetGauge(
        "mdseq_page_file_syncs",
        "Lifetime fsyncs of the database file (refreshed per scrape)");
    metrics->pool_hits = reg->GetGauge(
        "mdseq_buffer_pool_hits",
        "Pool-wide cumulative buffer-pool hits (refreshed per scrape)");
    metrics->pool_misses = reg->GetGauge(
        "mdseq_buffer_pool_misses",
        "Pool-wide cumulative buffer-pool misses (refreshed per scrape)");
    metrics->pool_evictions = reg->GetGauge(
        "mdseq_buffer_pool_evictions",
        "Pool-wide cumulative buffer-pool evictions (refreshed per scrape)");
  }
  metrics_ = std::move(metrics);
}

void QueryEngine::RefreshStorageGauges() {
  if (metrics_ == nullptr || metrics_->page_file_reads == nullptr) return;
  const PageFile* file = nullptr;
  const BufferPool* pool = nullptr;
  if (disk_database_ != nullptr) {
    file = &disk_database_->file();
    pool = &disk_database_->pool();
  } else if (live_database_ != nullptr) {
    file = &live_database_->file();
    pool = &live_database_->pool();
  } else {
    return;
  }
  metrics_->page_file_reads->Set(static_cast<double>(file->reads()));
  metrics_->page_file_writes->Set(static_cast<double>(file->writes()));
  metrics_->page_file_syncs->Set(static_cast<double>(file->syncs()));
  metrics_->pool_hits->Set(static_cast<double>(pool->hits()));
  metrics_->pool_misses->Set(static_cast<double>(pool->misses()));
  metrics_->pool_evictions->Set(static_cast<double>(pool->evictions()));
}

void QueryEngine::RefreshScrapeGauges() {
  if (metrics_ != nullptr && metrics_->uptime_seconds != nullptr) {
    metrics_->uptime_seconds->Set(UnixNowSeconds() - start_unix_ts_);
  }
  // Cache and admission-class counters live inside their components (they
  // are hot-path mutexed state, not registry handles); sync them into the
  // registry by delta at scrape time.
  if (metrics_ != nullptr) {
    std::lock_guard<std::mutex> lock(scrape_mutex_);
    if (cache_ != nullptr && metrics_->cache_hits != nullptr) {
      const ResultCache::Stats now = cache_->GetStats();
      metrics_->cache_hits->Increment(now.hits - cache_scraped_.hits);
      metrics_->cache_misses->Increment(now.misses - cache_scraped_.misses);
      metrics_->cache_insertions->Increment(now.insertions -
                                            cache_scraped_.insertions);
      metrics_->cache_evictions->Increment(now.evictions -
                                           cache_scraped_.evictions);
      metrics_->cache_invalidations->Increment(now.invalidations -
                                               cache_scraped_.invalidations);
      metrics_->cache_singleflight_waits->Increment(
          now.singleflight_waits - cache_scraped_.singleflight_waits);
      metrics_->cache_bytes->Set(static_cast<double>(now.bytes));
      metrics_->cache_entries->Set(static_cast<double>(now.entries));
      cache_scraped_ = now;
    }
    if (metrics_->qos_class_shed != nullptr) {
      uint64_t shed = 0;
      uint64_t rejected = 0;
      for (const TenantClassStats& c : pool_->TenantStats()) {
        shed += c.shed;
        rejected += c.rejected;
      }
      metrics_->qos_class_shed->Increment(shed - qos_shed_scraped_);
      metrics_->qos_class_rejected->Increment(rejected -
                                              qos_rejected_scraped_);
      qos_shed_scraped_ = shed;
      qos_rejected_scraped_ = rejected;
    }
  }
  RefreshStorageGauges();
}

void QueryEngine::StartIntrospection(const EngineOptions& options) {
  if (options.listen_port < 0) return;
  MDSEQ_CHECK(options.listen_port <= 65535);
  obs::http::HttpServer::Options server_options;
  server_options.port = static_cast<uint16_t>(options.listen_port);
  server_ = std::make_unique<obs::http::HttpServer>(server_options);
  RegisterEngineEndpoints(server_.get(), this);
  if (!server_->Start()) {
    obs::Logger::Global()
        .Error("introspection_bind_failed")
        .I64("port", options.listen_port);
    server_.reset();
    return;
  }
  obs::Logger::Global()
      .Info("introspection_listening")
      .U64("port", server_->port());
}

QueryEngine::~QueryEngine() {
  // The server's handlers walk engine state; take it down before anything
  // else is torn up.
  server_.reset();
  Shutdown();
}

std::future<QueryOutcome> QueryEngine::Submit(Sequence query,
                                              const QueryOptions& options) {
  auto pending = std::make_shared<Pending>(std::move(query));
  pending->options = options;
  pending->submit_time = Clock::now();
  if (options.deadline.count() > 0) {
    pending->deadline = pending->submit_time + options.deadline;
  }
  std::future<QueryOutcome> future = pending->promise.get_future();
  pending->id = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Visible in /debug/active (phase "queued") from this point until Finish.
  pending->active =
      active_.Register(pending->id, options.epsilon, options.verified);
  pending->engine_cancel = pending->active->cancel.token();
  if (metrics_ != nullptr) {
    metrics_->submitted->Increment();
    metrics_->queries_active->Set(static_cast<double>(active_.size()));
  }

  if (cache_ != nullptr) {
    pending->cache_key =
        WorkloadQuerySignature(pending->query.View(), options.epsilon,
                               options.verified, search_options_);
    pending->cache_stamp = SnapshotStamp();
    pending->cache_probe = true;
    // Fast path: a fresh hit completes on the caller thread, bypassing the
    // admission queue and the pool entirely.
    if (std::optional<SearchResult> hit =
            cache_->Lookup(pending->cache_key, pending->cache_stamp)) {
      Finish(pending, QueryStatus::kOk, std::move(*hit));
      return future;
    }
  }

  PoolTask task;
  task.run = [this, pending] { Execute(pending); };
  task.on_shed = [this, pending] {
    Finish(pending, QueryStatus::kShed, SearchResult());
  };
  if (pool_->Submit(std::move(task), options.tenant) ==
      AdmitResult::kRejected) {
    Finish(pending, QueryStatus::kRejected, SearchResult());
  }
  return future;
}

std::vector<std::future<QueryOutcome>> QueryEngine::SubmitBatch(
    std::vector<Sequence> queries, const QueryOptions& options) {
  std::vector<std::future<QueryOutcome>> futures;
  futures.reserve(queries.size());
  for (Sequence& query : queries) {
    futures.push_back(Submit(std::move(query), options));
  }
  return futures;
}

std::future<IngestOutcome> QueryEngine::SubmitIngest(IngestBatch batch) {
  auto pending = std::make_shared<PendingIngest>(std::move(batch));
  pending->submit_time = Clock::now();
  std::future<IngestOutcome> future = pending->promise.get_future();

  bool admitted = live_database_ != nullptr &&
                  accepting_.load(std::memory_order_acquire);
  if (admitted) {
    // Reserve an admission slot; release on rejection/shed/completion.
    const size_t prior =
        ingest_pending_.fetch_add(1, std::memory_order_acq_rel);
    if (prior >= max_pending_ingest_) {
      ingest_pending_.fetch_sub(1, std::memory_order_acq_rel);
      admitted = false;
    }
  }
  if (!admitted) {
    IngestOutcome outcome;
    outcome.rejected = true;
    FinishIngest(pending, std::move(outcome));
    return future;
  }

  PoolTask task;
  task.run = [this, pending] { ExecuteIngest(pending); };
  task.on_shed = [this, pending] {
    ingest_pending_.fetch_sub(1, std::memory_order_acq_rel);
    IngestOutcome outcome;
    outcome.rejected = true;
    FinishIngest(pending, std::move(outcome));
  };
  if (pool_->Submit(std::move(task)) == AdmitResult::kRejected) {
    ingest_pending_.fetch_sub(1, std::memory_order_acq_rel);
    IngestOutcome outcome;
    outcome.rejected = true;
    FinishIngest(pending, std::move(outcome));
  }
  return future;
}

void QueryEngine::ExecuteIngest(const std::shared_ptr<PendingIngest>& pending) {
  IngestOutcome outcome;
  uint64_t fsync_delta = 0;
  bool checkpointed = false;
  {
    // One batch at a time: its appends land in one WAL group commit, and
    // the Status() before/after deltas below are unambiguous.
    std::lock_guard<std::mutex> lock(ingest_mutex_);
    const IngestStatus before = live_database_->Status();
    outcome.ok = true;
    for (IngestOp& op : pending->batch.ops) {
      uint64_t id = op.sequence_id;
      if (id == IngestOp::kNewSequence) {
        id = live_database_->BeginSequence();
        outcome.sequence_ids.push_back(id);
      }
      if (!op.points.empty()) {
        if (op.points.dim() != live_database_->dim() ||
            !live_database_->AppendPoints(id, op.points.View())) {
          outcome.ok = false;
          continue;
        }
        outcome.points += op.points.size();
      }
      if (op.seal && !live_database_->SealSequence(id)) outcome.ok = false;
    }
    if (!live_database_->Commit()) outcome.ok = false;
    if (pending->batch.checkpoint) {
      checkpointed = live_database_->Checkpoint();
      if (!checkpointed) outcome.ok = false;
    }
    const IngestStatus after = live_database_->Status();
    fsync_delta = after.wal_fsyncs - before.wal_fsyncs;
    if (metrics_ != nullptr && metrics_->ingest_points != nullptr) {
      if (outcome.points > 0) {
        metrics_->ingest_points->Increment(outcome.points);
      }
      metrics_->ingest_batches->Increment();
      if (fsync_delta > 0) metrics_->wal_fsyncs->Increment(fsync_delta);
      if (checkpointed) {
        metrics_->checkpoint_seconds->Observe(after.last_checkpoint_seconds);
      }
    }
    ingest_points_.fetch_add(outcome.points, std::memory_order_relaxed);
    ingest_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  ingest_pending_.fetch_sub(1, std::memory_order_acq_rel);
  obs::Logger::Global()
      .Info("ingest_commit")
      .U64("ops", pending->batch.ops.size())
      .U64("points", outcome.points)
      .U64("wal_fsyncs", fsync_delta)
      .Bool("checkpoint", checkpointed)
      .Bool("ok", outcome.ok);
  FinishIngest(pending, std::move(outcome));
}

void QueryEngine::FinishIngest(const std::shared_ptr<PendingIngest>& pending,
                               IngestOutcome outcome) {
  if (outcome.rejected) {
    ingest_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr && metrics_->ingest_rejected != nullptr) {
      metrics_->ingest_rejected->Increment();
    }
  }
  outcome.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - pending->submit_time);
  pending->promise.set_value(std::move(outcome));
}

void QueryEngine::Start() { pool_->Start(); }

void QueryEngine::Shutdown() {
  accepting_.store(false, std::memory_order_release);
  pool_->Shutdown();
}

SearchResult QueryEngine::RunSearch(SequenceView query,
                                    const QueryOptions& options,
                                    const SearchControl& control) const {
  if (coordinator_ != nullptr) {
    return options.verified
               ? coordinator_->SearchVerified(query, options.epsilon, control)
               : coordinator_->Search(query, options.epsilon, control);
  }
  if (memory_database_ != nullptr) {
    return options.verified
               ? memory_search_->SearchVerified(query, options.epsilon,
                                                control)
               : memory_search_->Search(query, options.epsilon, control);
  }
  if (live_database_ != nullptr) {
    return options.verified
               ? live_database_->SearchVerified(query, options.epsilon,
                                                control)
               : live_database_->Search(query, options.epsilon, control);
  }
  return options.verified
             ? disk_database_->SearchVerified(query, options.epsilon,
                                              control)
             : disk_database_->Search(query, options.epsilon, control);
}

uint64_t QueryEngine::DatabaseSequences() const {
  if (coordinator_ != nullptr) return coordinator_->num_sequences();
  if (memory_database_ != nullptr) return memory_database_->num_sequences();
  if (live_database_ != nullptr) return live_database_->num_sequences();
  return disk_database_->num_sequences();
}

void QueryEngine::Execute(const std::shared_ptr<Pending>& pending) {
  // Admission-to-execution checkpoint: a query that waited out its budget
  // (or was cancelled while queued — by the submitter's token or by
  // /debug/cancel) is dropped before any search work.
  if (pending->options.cancel.cancelled() ||
      pending->engine_cancel.cancelled()) {
    Finish(pending, QueryStatus::kCancelled, SearchResult());
    return;
  }
  if (Clock::now() >= pending->deadline) {
    Finish(pending, QueryStatus::kDeadlineExpired, SearchResult());
    return;
  }

  if (pending->cache_probe) {
    // Single-flight: identical concurrent misses collapse onto one leader.
    // Only workers reach this point, so a follower always waits on a leader
    // that is already executing — never on a queued task.
    while (true) {
      pending->cache_stamp = SnapshotStamp();
      if (std::optional<SearchResult> hit =
              cache_->Lookup(pending->cache_key, pending->cache_stamp)) {
        Finish(pending, QueryStatus::kOk, std::move(*hit));
        return;
      }
      if (cache_->JoinOrLead(pending->cache_key)) {
        pending->cache_leader = true;
        break;
      }
    }
    // Re-read the stamp as leader, right before the search runs: captured
    // before execution, so it can never run ahead of the data it describes.
    pending->cache_stamp = SnapshotStamp();
  }

  SearchControl control;
  control.cancel = pending->options.cancel.flag();
  control.cancel2 = pending->engine_cancel.flag();
  control.deadline = pending->deadline;
  control.progress = &pending->active->progress;

  // With a collector installed, record this query's phase spans; the trace
  // is written by this worker only and handed to the sharded store at the
  // end. Without one, `control.trace` stays null and every SpanScope on the
  // search path inlines to a pointer test.
  std::optional<obs::Trace> trace;
  if (traces_ != nullptr) {
    trace.emplace();
    trace->set_query_id(pending->id);
    control.trace = &*trace;
  }

  SearchResult result;
  {
    obs::SpanScope query_span(control.trace, "query");
    result = RunSearch(pending->query.View(), pending->options, control);
    query_span.Arg("candidates", result.stats.phase2_candidates);
    query_span.Arg("matches", result.matches.size());
    query_span.Arg("interrupted", result.interrupted ? 1 : 0);
  }
  if (trace.has_value()) {
    const bool evicted = traces_->Add(std::move(*trace));
    if (evicted && metrics_ != nullptr) {
      metrics_->traces_dropped->Increment();
    }
  }

  QueryStatus status = QueryStatus::kOk;
  if (result.interrupted) {
    // Cancellation wins the tie: it is an explicit signal (from the
    // submitter's token or the engine's /debug/cancel flag).
    status = pending->options.cancel.cancelled() ||
                     pending->engine_cancel.cancelled()
                 ? QueryStatus::kCancelled
                 : QueryStatus::kDeadlineExpired;
  }
  if (pending->cache_leader) {
    if (status == QueryStatus::kOk && !result.interrupted) {
      cache_->Insert(pending->cache_key, pending->cache_stamp, result);
    }
    cache_->Complete(pending->cache_key);
  }
  Finish(pending, status, std::move(result));
}

void QueryEngine::Finish(const std::shared_ptr<Pending>& pending,
                         QueryStatus status, SearchResult result) {
  switch (status) {
    case QueryStatus::kOk:
      served_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kDeadlineExpired:
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  // Work performed is charged to the engine totals even for interrupted
  // queries — the counters measure load, not success.
  node_accesses_.fetch_add(result.stats.node_accesses,
                           std::memory_order_relaxed);
  phase2_candidates_.fetch_add(result.stats.phase2_candidates,
                               std::memory_order_relaxed);
  phase3_matches_.fetch_add(result.stats.phase3_matches,
                            std::memory_order_relaxed);
  dnorm_evaluations_.fetch_add(result.stats.dnorm_evaluations,
                               std::memory_order_relaxed);
  page_hits_.fetch_add(result.stats.page_hits, std::memory_order_relaxed);
  page_misses_.fetch_add(result.stats.page_misses,
                         std::memory_order_relaxed);
  partition_ns_.fetch_add(result.stats.partition_ns,
                          std::memory_order_relaxed);
  first_pruning_ns_.fetch_add(result.stats.first_pruning_ns,
                              std::memory_order_relaxed);
  second_pruning_ns_.fetch_add(result.stats.second_pruning_ns,
                               std::memory_order_relaxed);
  interval_assembly_ns_.fetch_add(result.stats.interval_assembly_ns,
                                  std::memory_order_relaxed);
  verify_ns_.fetch_add(result.stats.verify_ns, std::memory_order_relaxed);
  fanout_wait_ns_.fetch_add(result.stats.fanout_wait_ns,
                            std::memory_order_relaxed);
  merge_ns_.fetch_add(result.stats.merge_ns, std::memory_order_relaxed);

  QueryOutcome outcome;
  outcome.status = status;
  outcome.result = std::move(result);
  outcome.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - pending->submit_time);
  if (status == QueryStatus::kOk) {
    latency_.Record(static_cast<uint64_t>(outcome.latency.count()));
  }

  if (metrics_ != nullptr) {
    const SearchStats& stats = outcome.result.stats;
    switch (status) {
      case QueryStatus::kOk:
        metrics_->served->Increment();
        break;
      case QueryStatus::kRejected:
        metrics_->rejected->Increment();
        break;
      case QueryStatus::kShed:
        metrics_->shed->Increment();
        break;
      case QueryStatus::kDeadlineExpired:
        metrics_->deadline_expired->Increment();
        break;
      case QueryStatus::kCancelled:
        metrics_->cancelled->Increment();
        break;
    }
    if (stats.node_accesses > 0) {
      metrics_->node_accesses->Increment(stats.node_accesses);
    }
    if (stats.phase2_candidates > 0) {
      metrics_->phase2_candidates->Increment(stats.phase2_candidates);
    }
    if (stats.phase3_matches > 0) {
      metrics_->phase3_matches->Increment(stats.phase3_matches);
    }
    if (stats.dnorm_evaluations > 0) {
      metrics_->dnorm_evaluations->Increment(stats.dnorm_evaluations);
    }
    if (stats.page_hits > 0) metrics_->page_hits->Increment(stats.page_hits);
    if (stats.page_misses > 0) {
      metrics_->page_misses->Increment(stats.page_misses);
    }
    if (stats.partition_ns > 0) {
      metrics_->partition_ns->Increment(stats.partition_ns);
    }
    if (stats.first_pruning_ns > 0) {
      metrics_->first_pruning_ns->Increment(stats.first_pruning_ns);
    }
    if (stats.second_pruning_ns > 0) {
      metrics_->second_pruning_ns->Increment(stats.second_pruning_ns);
    }
    if (stats.interval_assembly_ns > 0) {
      metrics_->interval_assembly_ns->Increment(stats.interval_assembly_ns);
    }
    if (stats.verify_ns > 0) metrics_->verify_ns->Increment(stats.verify_ns);
    if (stats.probe_abandons > 0) {
      metrics_->prune_probe_abandons->Increment(stats.probe_abandons);
    }
    if (stats.verify_abandons > 0) {
      metrics_->prune_verify_abandons->Increment(stats.verify_abandons);
    }
    if (stats.bytes_read > 0) {
      metrics_->prune_bytes_read->Increment(stats.bytes_read);
    }
    if (stats.prefilter_abandons > 0) {
      metrics_->prune_prefilter_abandons->Increment(stats.prefilter_abandons);
    }
    if (stats.approx_candidates_skipped > 0 &&
        metrics_->approx_queries != nullptr) {
      metrics_->approx_queries->Increment();
      metrics_->approx_candidates_skipped->Increment(
          stats.approx_candidates_skipped);
    }
    if (status == QueryStatus::kOk) {
      // Survivor ratios only for queries that ran the full funnel — a
      // partial funnel would skew the pruning-power distribution. Stage
      // order is fixed by CascadeOf: first_pruning, prefilter,
      // second_pruning, then verify for verified queries.
      const PruningCascadeStats cascade = CascadeOf(
          stats, DatabaseSequences(), pending->options.verified);
      if (!cascade.stages.empty()) {
        metrics_->prune_first_survivor_ratio->Observe(
            cascade.stages[0].SurvivorRatio());
      }
      if (cascade.stages.size() > 1) {
        metrics_->prune_prefilter_survivor_ratio->Observe(
            cascade.stages[1].SurvivorRatio());
      }
      if (cascade.stages.size() > 2) {
        metrics_->prune_second_survivor_ratio->Observe(
            cascade.stages[2].SurvivorRatio());
      }
    }
    if (stats.shards_total > 0 && metrics_->fanout_wait_seconds != nullptr) {
      metrics_->fanout_wait_seconds->Observe(
          static_cast<double>(stats.fanout_wait_ns) / 1e9);
      metrics_->merge_seconds->Observe(
          static_cast<double>(stats.merge_ns) / 1e9);
    }
    if (status == QueryStatus::kOk) {
      const double seconds =
          static_cast<double>(outcome.latency.count()) / 1e6;
      if (traces_ != nullptr) {
        // The query id doubles as its trace id (see Execute), so the
        // worst-percentile buckets carry a pointer straight to the trace
        // of a query that landed there.
        metrics_->latency_seconds->ObserveWithExemplar(seconds, pending->id);
      } else {
        metrics_->latency_seconds->Observe(seconds);
      }
    }
    metrics_->queue_depth->Set(
        static_cast<double>(pool_->queue_depth()));
  }

  active_.Deregister(pending->id);
  if (metrics_ != nullptr) {
    metrics_->queries_active->Set(static_cast<double>(active_.size()));
  }

  // Anomalous outcomes go to the structured log; kOk stays silent unless
  // slow. Rejected/shed queries never ran, so they are admission events,
  // not slow queries.
  const uint64_t latency_us = static_cast<uint64_t>(outcome.latency.count());
  obs::Logger& log = obs::Logger::Global();
  switch (status) {
    case QueryStatus::kOk:
      break;
    case QueryStatus::kRejected:
      log.Info("query_rejected")
          .U64("query_id", pending->id)
          .U64("queue_depth", pool_->queue_depth());
      break;
    case QueryStatus::kShed:
      log.Info("query_shed")
          .U64("query_id", pending->id)
          .U64("wait_us", latency_us);
      break;
    case QueryStatus::kDeadlineExpired:
      log.Info("query_deadline_expired")
          .U64("query_id", pending->id)
          .U64("latency_us", latency_us)
          .Bool("ran", outcome.result.interrupted);
      break;
    case QueryStatus::kCancelled:
      log.Info("query_cancelled")
          .U64("query_id", pending->id)
          .U64("latency_us", latency_us)
          .Bool("ran", outcome.result.interrupted);
      break;
  }
  const bool ran = status != QueryStatus::kRejected &&
                   status != QueryStatus::kShed;
  if (slow_ != nullptr && ran && slow_->IsSlow(outcome.latency)) {
    SlowQueryRecord record;
    record.id = pending->id;
    record.status = QueryStatusName(status);
    record.latency_us = latency_us;
    record.epsilon = pending->options.epsilon;
    record.verified = pending->options.verified;
    record.unix_ts = UnixNowSeconds();
    record.stats = outcome.result.stats;
    record.matches = outcome.result.matches.size();
    record.shards = outcome.result.shard_breakdown;
    slow_->Record(std::move(record));
    if (metrics_ != nullptr) metrics_->slow_queries->Increment();
    log.Warn("slow_query")
        .U64("query_id", pending->id)
        .Str("status", QueryStatusName(status))
        .U64("latency_us", latency_us)
        .U64("threshold_us",
             static_cast<uint64_t>(slow_->threshold().count()))
        .U64("phase2_candidates", outcome.result.stats.phase2_candidates)
        .U64("phase3_matches", outcome.result.stats.phase3_matches)
        .U64("dnorm_evaluations", outcome.result.stats.dnorm_evaluations);
  }

  // Flight recorder: every completion — served or refused — lands in the
  // workload log (subject to sampling). Appending before the promise
  // resolves means a submitter that saw the future is guaranteed to find
  // the record in the log.
  if (workload_ != nullptr) {
    WorkloadQueryRecord record;
    record.id = pending->id;
    record.completion_unix = UnixNowSeconds();
    record.arrival_unix =
        record.completion_unix - static_cast<double>(latency_us) / 1e6;
    record.outcome = static_cast<uint8_t>(status);
    record.epsilon = pending->options.epsilon;
    record.verified = pending->options.verified;
    record.opt_prefilter = search_options_.prefilter;
    record.opt_composite = search_options_.composite_bound;
    record.approximate = search_options_.max_candidates > 0 ||
                         search_options_.max_epsilon_rounds > 0;
    record.opt_max_candidates = search_options_.max_candidates;
    record.opt_max_epsilon_rounds = search_options_.max_epsilon_rounds;
    record.tenant = pending->options.tenant;
    record.deadline_us =
        static_cast<uint64_t>(pending->options.deadline.count());
    record.signature = WorkloadQuerySignature(
        pending->query.View(), pending->options.epsilon,
        pending->options.verified, search_options_);
    record.result_digest =
        ran ? ResultDigest(outcome.result.matches, pending->options.verified)
            : 0;
    record.matches = outcome.result.matches.size();
    record.interrupted = outcome.result.interrupted;
    record.stats = outcome.result.stats;
    record.shards = outcome.result.shard_breakdown;
    record.query = pending->query;
    workload_->Record(record);
  }

  pending->promise.set_value(std::move(outcome));
}

EngineStats QueryEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.node_accesses = node_accesses_.load(std::memory_order_relaxed);
  s.phase2_candidates = phase2_candidates_.load(std::memory_order_relaxed);
  s.phase3_matches = phase3_matches_.load(std::memory_order_relaxed);
  s.dnorm_evaluations = dnorm_evaluations_.load(std::memory_order_relaxed);
  s.page_hits = page_hits_.load(std::memory_order_relaxed);
  s.page_misses = page_misses_.load(std::memory_order_relaxed);
  s.partition_ns = partition_ns_.load(std::memory_order_relaxed);
  s.first_pruning_ns = first_pruning_ns_.load(std::memory_order_relaxed);
  s.second_pruning_ns = second_pruning_ns_.load(std::memory_order_relaxed);
  s.interval_assembly_ns =
      interval_assembly_ns_.load(std::memory_order_relaxed);
  s.verify_ns = verify_ns_.load(std::memory_order_relaxed);
  s.fanout_wait_ns = fanout_wait_ns_.load(std::memory_order_relaxed);
  s.merge_ns = merge_ns_.load(std::memory_order_relaxed);
  s.traces_dropped = traces_ != nullptr ? traces_->dropped() : 0;
  s.p50_latency_us = latency_.PercentileMicros(50.0);
  s.p99_latency_us = latency_.PercentileMicros(99.0);
  s.max_latency_us = latency_.MaxMicros();
  s.mean_latency_us = latency_.MeanMicros();
  return s;
}

std::vector<obs::Trace> QueryEngine::TakeTraces() {
  if (traces_ == nullptr) return {};
  return traces_->Take();
}

std::vector<obs::Trace> QueryEngine::SnapshotTraces(uint64_t query_id) const {
  if (traces_ == nullptr) return {};
  return traces_->Snapshot(query_id);
}

std::vector<SlowQueryRecord> QueryEngine::SlowQueries() const {
  if (slow_ == nullptr) return {};
  return slow_->Snapshot();
}

EngineHealth QueryEngine::Health() const {
  EngineHealth health;
  health.accepting = accepting_.load(std::memory_order_acquire);
  health.workers = pool_->num_threads();
  health.queue_depth = pool_->queue_depth();
  health.queue_capacity = pool_->queue_capacity();
  health.submitted = submitted_.load(std::memory_order_relaxed);
  health.served = served_.load(std::memory_order_relaxed);
  health.active_queries = active_.size();
  health.start_unix_ts = start_unix_ts_;
  health.uptime_seconds = UnixNowSeconds() - start_unix_ts_;
  if (disk_database_ != nullptr) {
    health.disk_backed = true;
    health.pool = disk_database_->pool().Health();
  } else if (live_database_ != nullptr) {
    health.disk_backed = true;
    health.pool = live_database_->pool().Health();
  }
  return health;
}

int QueryEngine::introspection_port() const {
  return server_ != nullptr ? static_cast<int>(server_->port()) : -1;
}

}  // namespace mdseq
