#ifndef MDSEQ_ENGINE_WORKLOAD_RECORDER_H_
#define MDSEQ_ENGINE_WORKLOAD_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/search.h"
#include "geom/sequence.h"
#include "obs/metrics.h"
#include "obs/workload_log.h"

namespace mdseq {

/// One query as captured by the workload flight recorder: everything
/// needed to (a) re-execute the query against another database or build
/// and (b) compare the outcome — identity, arrival/completion wall clock,
/// outcome, the canonical query signature, the stable result digest, the
/// full pruning-cascade counters, the per-shard breakdown, and the raw
/// query points themselves.
struct WorkloadQueryRecord {
  /// Engine query id — doubles as the trace id (`/debug/trace?id=`).
  uint64_t id = 0;
  /// Wall-clock seconds since the Unix epoch. Arrival is derived as
  /// completion minus measured latency, so both come from one clock read.
  double arrival_unix = 0.0;
  double completion_unix = 0.0;
  /// `QueryStatus` as its numeric value ("ok"/"rejected"/"shed"/
  /// "deadline_expired"/"cancelled"/"failed").
  uint8_t outcome = 0;
  double epsilon = 0.0;
  bool verified = false;
  /// Engine-wide `SearchOptions` in force when the query ran.
  bool opt_prefilter = true;
  bool opt_composite = false;
  /// Approximate tier: true when a quality budget was configured for this
  /// query. `DiffWorkloads` skips the digest comparison for approximate
  /// records (cut position may differ across builds) but still diffs the
  /// deterministic budget counters.
  bool approximate = false;
  /// The budget knobs in force (`SearchOptions::max_candidates` /
  /// `max_epsilon_rounds`), so a replay pins the same budget.
  uint64_t opt_max_candidates = 0;
  uint32_t opt_max_epsilon_rounds = 0;
  /// Admission class the query was submitted under (0 = default class).
  uint32_t tenant = 0;
  /// Relative deadline in microseconds; 0 = none.
  uint64_t deadline_us = 0;
  /// Canonical query signature: FNV-1a over (dim, raw point bytes,
  /// epsilon, verified, SearchOptions flags). Partitioning is
  /// deterministic in the point set, so hashing the points is equivalent
  /// to hashing the query MBR set while staying exact.
  uint64_t signature = 0;
  /// `ResultDigest` of the matches (0 for queries that never ran).
  uint64_t result_digest = 0;
  uint64_t matches = 0;
  bool interrupted = false;
  SearchStats stats;
  /// Coordinator engines only: per-shard slices incl. per-shard digests.
  std::vector<ShardQueryStats> shards;
  /// The full query points, so the record alone re-executes the query.
  Sequence query{1};
};

/// Canonical signature of a query submission (see
/// `WorkloadQueryRecord::signature`). Mixes the query points, epsilon,
/// the verified flag, and every result-affecting `SearchOptions` knob
/// (prefilter, composite bound, and the approximate-tier budgets) — the
/// result cache keys on this value, so two submissions share an entry iff
/// they are the same query under the same knobs.
uint64_t WorkloadQuerySignature(SequenceView query, double epsilon,
                                bool verified, const SearchOptions& options);

/// Flat native-endian codec for one record (the payload inside a
/// `WorkloadLogWriter` frame of type `kWorkloadQueryFrame`).
inline constexpr uint8_t kWorkloadQueryFrame = 1;
std::vector<uint8_t> EncodeWorkloadRecord(const WorkloadQueryRecord& record);
bool DecodeWorkloadRecord(const uint8_t* bytes, size_t count,
                          WorkloadQueryRecord* record);

/// All query records of a recording: `<path>.1` (rotated generation, if
/// any) then `<path>`, in write order. `clean` is false when a torn tail
/// or an undecodable frame was skipped; `skipped` counts them.
struct WorkloadReadResult {
  std::vector<WorkloadQueryRecord> records;
  bool clean = true;
  uint64_t skipped = 0;
};
WorkloadReadResult ReadWorkloadRecords(const std::string& path);

/// The engine's always-on flight recorder: appends every Nth completed
/// query to a rotating CRC-framed log and mirrors the most recent records
/// in a fixed ring for `/debug/workload`. Appends take one mutex and one
/// buffered write — `Record` is called once per query completion, off the
/// search hot path.
class WorkloadRecorder {
 public:
  struct Options {
    std::string path;
    /// Record every Nth query (1 = all). Sampling is by submission count,
    /// so a replayed log preserves arrival spacing of what it kept.
    uint64_t sample_every = 1;
    /// Rotation byte budget for the log file (0 = never rotate).
    uint64_t max_bytes = 64ull << 20;
    /// `/debug/workload` ring capacity.
    size_t recent_capacity = 64;
  };

  explicit WorkloadRecorder(const Options& options);

  WorkloadRecorder(const WorkloadRecorder&) = delete;
  WorkloadRecorder& operator=(const WorkloadRecorder&) = delete;

  /// False when the log file could not be opened; `Record` is then a
  /// counting no-op (write_failures grows).
  bool ok() const { return ok_; }

  /// Optional: binds the `mdseq_workload_*` counter family.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// Samples, frames, appends, and mirrors one completed query.
  void Record(const WorkloadQueryRecord& record);

  /// Most recent records, newest first, at most `limit`.
  std::vector<WorkloadQueryRecord> Recent(size_t limit) const;

  const Options& options() const { return options_; }
  uint64_t records_written() const { return records_written_.load(); }
  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t sampled_out() const { return sampled_out_.load(); }
  uint64_t rotations() const { return rotations_.load(); }
  uint64_t write_failures() const { return write_failures_.load(); }

 private:
  const Options options_;
  bool ok_ = false;

  mutable std::mutex mutex_;
  obs::WorkloadLogWriter writer_;
  std::deque<WorkloadQueryRecord> recent_;
  uint64_t seen_ = 0;

  std::atomic<uint64_t> records_written_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> sampled_out_{0};
  std::atomic<uint64_t> rotations_{0};
  std::atomic<uint64_t> write_failures_{0};

  obs::Counter* metric_records_ = nullptr;
  obs::Counter* metric_bytes_ = nullptr;
  obs::Counter* metric_sampled_out_ = nullptr;
  obs::Counter* metric_rotations_ = nullptr;
  obs::Counter* metric_write_failures_ = nullptr;
};

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_WORKLOAD_RECORDER_H_
