#ifndef MDSEQ_ENGINE_THREAD_POOL_H_
#define MDSEQ_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/admission_queue.h"
#include "serve/tenant_queue.h"

namespace mdseq {

/// A unit of work for the pool. `run` executes on a worker thread; when the
/// shed-oldest policy evicts a queued task, its `on_shed` callback (if any)
/// runs instead — exactly one of the two is invoked for every admitted
/// task, so a promise tied to the task is always completed.
struct PoolTask {
  std::function<void()> run;
  std::function<void()> on_shed;
};

/// Fixed-size thread-pool executor over a bounded `AdmissionQueue`: workers
/// block on the queue's condition variable (no busy-wait) and the queue's
/// overload policy decides what happens when submissions outrun service.
///
/// Shutdown drains: tasks already admitted still execute before the workers
/// exit, so no accepted work is silently lost.
class ThreadPool {
 public:
  struct Options {
    /// Worker threads; 0 means one per hardware thread.
    size_t num_threads = 0;
    /// Admission queue capacity (tasks waiting, not counting the ones
    /// currently executing).
    size_t queue_capacity = 1024;
    OverloadPolicy policy = OverloadPolicy::kBlock;
    /// When true, workers wait for `Start` before consuming tasks — used
    /// by tests to fill the queue deterministically.
    bool start_suspended = false;
    /// Per-tenant admission classes. Empty (the default) keeps the plain
    /// single FIFO — the pre-QoS behavior, bit for bit. Non-empty switches
    /// to a `TenantQueue` with one bounded FIFO per class and weighted
    /// fair dequeue; `Submit`'s tenant id then selects the class.
    std::vector<TenantClassSpec> tenant_classes;
  };

  explicit ThreadPool(const Options& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits one task, applying the overload policy. kAdmitted/kShed mean
  /// `task` was queued (kShed additionally ran the evicted victim's
  /// `on_shed` on this thread); kRejected means `task` was refused and none
  /// of its callbacks will ever run — the caller must complete any attached
  /// promise itself.
  AdmitResult Submit(PoolTask task, uint32_t tenant = 0);

  /// Releases suspended workers (no-op otherwise).
  void Start();

  /// Closes the queue, lets the workers drain it, and joins them.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  size_t queue_depth() const {
    return tenant_queue_ != nullptr ? tenant_queue_->size() : queue_->size();
  }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Per-class accounting; empty when no tenant classes are configured.
  std::vector<TenantClassStats> TenantStats() const {
    if (tenant_queue_ == nullptr) return {};
    return tenant_queue_->Stats();
  }

 private:
  void WorkerLoop();

  const size_t queue_capacity_;
  // Exactly one of the two queues exists: the plain FIFO when no tenant
  // classes are configured (the zero-overhead default), the per-class
  // weighted queue otherwise.
  std::unique_ptr<AdmissionQueue<PoolTask>> queue_;
  std::unique_ptr<TenantQueue<PoolTask>> tenant_queue_;
  std::vector<std::thread> threads_;
  std::mutex start_mutex_;
  std::condition_variable start_cv_;
  bool started_ = false;
};

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_THREAD_POOL_H_
