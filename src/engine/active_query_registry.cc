#include "engine/active_query_registry.h"

#include <algorithm>

namespace mdseq {

std::shared_ptr<ActiveQuery> ActiveQueryRegistry::Register(uint64_t id,
                                                           double epsilon,
                                                           bool verified) {
  auto entry = std::make_shared<ActiveQuery>();
  entry->id = id;
  entry->epsilon = epsilon;
  entry->verified = verified;
  entry->start = std::chrono::steady_clock::now();
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.entries[id] = entry;
  return entry;
}

void ActiveQueryRegistry::Deregister(uint64_t id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.entries.erase(id);
}

bool ActiveQueryRegistry::Cancel(uint64_t id) {
  std::shared_ptr<ActiveQuery> entry;
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) return false;
    entry = it->second;
  }
  // Fire outside the shard lock — the flag is its own synchronization.
  entry->cancel.Cancel();
  return true;
}

std::vector<ActiveQueryInfo> ActiveQueryRegistry::Snapshot() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<ActiveQueryInfo> infos;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [id, entry] : shard.entries) {
      ActiveQueryInfo info;
      info.id = entry->id;
      info.epsilon = entry->epsilon;
      info.verified = entry->verified;
      info.elapsed_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - entry->start)
              .count());
      info.phase = entry->progress.CurrentPhase();
      info.phase2_candidates =
          entry->progress.phase2_candidates.load(std::memory_order_relaxed);
      info.phase3_matches =
          entry->progress.phase3_matches.load(std::memory_order_relaxed);
      infos.push_back(info);
    }
  }
  std::sort(infos.begin(), infos.end(),
            [](const ActiveQueryInfo& a, const ActiveQueryInfo& b) {
              return a.id < b.id;
            });
  return infos;
}

size_t ActiveQueryRegistry::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace mdseq
