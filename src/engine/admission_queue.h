#ifndef MDSEQ_ENGINE_ADMISSION_QUEUE_H_
#define MDSEQ_ENGINE_ADMISSION_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/check.h"

namespace mdseq {

/// What a bounded queue does when a push finds it full.
enum class OverloadPolicy {
  /// Block the producer until a consumer frees a slot (backpressure).
  kBlock,
  /// Refuse the new item immediately (load shedding at the door).
  kReject,
  /// Drop the *oldest* queued item to make room for the new one — the
  /// freshest-work-wins policy interactive systems prefer, since the oldest
  /// waiter is the most likely to have blown its deadline anyway.
  kShedOldest,
};

/// Outcome of `AdmissionQueue::Push`.
enum class AdmitResult {
  /// The item was queued.
  kAdmitted,
  /// The queue was full (kReject) or closed; the item was not queued.
  kRejected,
  /// The item was queued, but the oldest queued item was evicted to make
  /// room (kShedOldest); the victim is returned through `shed`.
  kShed,
};

/// A bounded multi-producer multi-consumer FIFO with a configurable
/// overload policy — the admission queue in front of the query engine's
/// worker pool. Producers call `Push`, consumers block in `Pop` on a
/// condition variable (no busy-wait). `Close` wakes everyone; consumers
/// drain the remaining items and then see `Pop` return false.
///
/// Thread-safe. Capacity must be >= 1.
template <typename T>
class AdmissionQueue {
 public:
  AdmissionQueue(size_t capacity, OverloadPolicy policy)
      : capacity_(capacity), policy_(policy) {
    MDSEQ_CHECK(capacity >= 1);
  }

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Offers one item. Under kBlock this waits for space (or for `Close`);
  /// under kReject a full queue refuses; under kShedOldest a full queue
  /// evicts its oldest item into `*shed` (when `shed` is non-null the
  /// caller is responsible for completing/failing the victim). Pushing to
  /// a closed queue always returns kRejected.
  AdmitResult Push(T item, std::optional<T>* shed = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (policy_ == OverloadPolicy::kBlock) {
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return AdmitResult::kRejected;
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case OverloadPolicy::kBlock:
          MDSEQ_CHECK(false);  // unreachable: the wait above ensured space
          return AdmitResult::kRejected;
        case OverloadPolicy::kReject:
          return AdmitResult::kRejected;
        case OverloadPolicy::kShedOldest: {
          if (shed != nullptr) shed->emplace(std::move(items_.front()));
          items_.pop_front();
          items_.push_back(std::move(item));
          lock.unlock();
          not_empty_.notify_one();
          return AdmitResult::kShed;
        }
      }
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return AdmitResult::kAdmitted;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns false only in the latter case.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop; false when empty (or closed and drained).
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue: subsequent pushes are rejected, blocked producers
  /// and consumers wake up. Items already queued remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }
  OverloadPolicy policy() const { return policy_; }

 private:
  const size_t capacity_;
  const OverloadPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_ADMISSION_QUEUE_H_
