#ifndef MDSEQ_ENGINE_SLOW_QUERY_LOG_H_
#define MDSEQ_ENGINE_SLOW_QUERY_LOG_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/search.h"

namespace mdseq {

/// One entry of the slow-query ring: identity, outcome, and the
/// EXPLAIN-style per-phase counters of a query that exceeded the latency
/// threshold.
struct SlowQueryRecord {
  uint64_t id = 0;
  /// Stable status name ("ok", "deadline_expired", ...) — a literal from
  /// `QueryStatusName`, never freed.
  const char* status = "ok";
  uint64_t latency_us = 0;
  double epsilon = 0.0;
  bool verified = false;
  /// Wall-clock seconds since the Unix epoch at completion, for
  /// correlating with external logs.
  double unix_ts = 0.0;
  SearchStats stats;
  size_t matches = 0;
  /// Coordinator queries only: per-shard slices of the query (identity,
  /// outcome, round trip, and the shard's own stats) so `/debug/slow`
  /// shows which shard made the query slow. Empty for single-database
  /// engines.
  std::vector<ShardQueryStats> shards;
};

/// Fixed-capacity ring of the most recent slow queries — the `/debug/slow`
/// backing store. Mutex-guarded: `Record` runs once per *slow* query (rare
/// by definition), so a plain lock beats clever lock-free structure here.
class SlowQueryLog {
 public:
  SlowQueryLog(std::chrono::microseconds threshold, size_t capacity);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// True when the latency qualifies as slow (callers gate on this before
  /// building a record).
  bool IsSlow(std::chrono::microseconds latency) const {
    return latency >= threshold_;
  }

  void Record(SlowQueryRecord record);

  /// Most recent first.
  std::vector<SlowQueryRecord> Snapshot() const;

  /// Slow queries seen since construction (>= what the ring still holds).
  uint64_t total_recorded() const;

  std::chrono::microseconds threshold() const { return threshold_; }
  size_t capacity() const { return capacity_; }

 private:
  const std::chrono::microseconds threshold_;
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<SlowQueryRecord> ring_;
  uint64_t total_ = 0;
};

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_SLOW_QUERY_LOG_H_
