#ifndef MDSEQ_ENGINE_ACTIVE_QUERY_REGISTRY_H_
#define MDSEQ_ENGINE_ACTIVE_QUERY_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/search.h"
#include "engine/cancellation.h"

namespace mdseq {

/// Shared state of one in-flight query, created at submission and released
/// when the query finishes. The searching worker writes `progress` (relaxed
/// atomics) while `/debug/active` reads it; `cancel` is the engine-owned
/// kill switch behind `POST /debug/cancel` — distinct from the submitter's
/// own token, which stays private to the submitter.
struct ActiveQuery {
  uint64_t id = 0;
  double epsilon = 0.0;
  bool verified = false;
  std::chrono::steady_clock::time_point start;
  QueryProgress progress;
  CancellationSource cancel;
};

/// What `/debug/active` reports per in-flight query.
struct ActiveQueryInfo {
  uint64_t id = 0;
  double epsilon = 0.0;
  bool verified = false;
  /// Since submission (queue wait included).
  uint64_t elapsed_us = 0;
  SearchPhase phase = SearchPhase::kQueued;
  uint64_t phase2_candidates = 0;
  uint64_t phase3_matches = 0;
};

/// Registry of every query between submission and completion, sharded by
/// query id so concurrent Register/Deregister from many workers spread over
/// independent locks. Entries are `shared_ptr`s: a snapshot or cancel can
/// hold one safely even as the query finishes and deregisters.
///
/// This is always on in the engine — the per-query cost is two sharded map
/// operations plus the relaxed progress stores the search already makes —
/// so `/debug/active` needs no opt-in flag.
class ActiveQueryRegistry {
 public:
  ActiveQueryRegistry() = default;
  ActiveQueryRegistry(const ActiveQueryRegistry&) = delete;
  ActiveQueryRegistry& operator=(const ActiveQueryRegistry&) = delete;

  /// Creates and stores the entry for `id` (phase starts at kQueued).
  std::shared_ptr<ActiveQuery> Register(uint64_t id, double epsilon,
                                        bool verified);

  /// Drops the entry; no-op for unknown ids (a query rejected at admission
  /// deregisters through the same path as a served one).
  void Deregister(uint64_t id);

  /// Fires the engine-side cancellation flag of `id`; false when the query
  /// is not in flight (already finished, or never existed).
  bool Cancel(uint64_t id);

  /// Point-in-time copy of every in-flight query, ascending by id. The
  /// progress fields are relaxed-atomic reads — recent, not transactional.
  std::vector<ActiveQueryInfo> Snapshot() const;

  size_t size() const;

 private:
  static constexpr size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<uint64_t, std::shared_ptr<ActiveQuery>> entries;
  };

  Shard& ShardFor(uint64_t id) { return shards_[id % kShards]; }
  const Shard& ShardFor(uint64_t id) const { return shards_[id % kShards]; }

  Shard shards_[kShards];
};

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_ACTIVE_QUERY_REGISTRY_H_
