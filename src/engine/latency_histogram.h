#ifndef MDSEQ_ENGINE_LATENCY_HISTOGRAM_H_
#define MDSEQ_ENGINE_LATENCY_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace mdseq {

/// Lock-free latency histogram: power-of-two microsecond buckets, each a
/// relaxed atomic counter, so any number of worker threads record without
/// contention and a reader computes percentiles from a consistent-enough
/// snapshot (individual counters are exact; the set is read without a
/// global lock, which is fine for monitoring).
///
/// Bucket b holds values in [2^(b-1), 2^b) microseconds (bucket 0 holds
/// {0}), covering up to ~1.2 hours in 32 buckets. Percentile answers are
/// the upper bound of the containing bucket — at most 2x the true value,
/// plenty for p50/p99 dashboards.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Record(uint64_t micros) {
    counts_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
    // fetch_max is C++26; emulate with a CAS loop (rarely more than one
    // iteration — the max changes only while latencies are still climbing).
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (micros > seen &&
           !max_.compare_exchange_weak(seen, micros,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  double MeanMicros() const {
    const uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  uint64_t MaxMicros() const { return max_.load(std::memory_order_relaxed); }

  /// Upper bound of the bucket containing the `p`-th percentile (p in
  /// [0, 100]), clamped to the recorded maximum so the answer never
  /// exceeds a value that was actually observed. Edge cases are exact:
  /// an empty histogram returns 0 (not a bucket bound), and a
  /// single-sample histogram returns that sample.
  uint64_t PercentileMicros(double p) const {
    std::array<uint64_t, kBuckets> snapshot;
    uint64_t total = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      snapshot[b] = counts_[b].load(std::memory_order_relaxed);
      total += snapshot[b];
    }
    if (total == 0) return 0;
    const uint64_t max_seen = max_.load(std::memory_order_relaxed);
    if (total == 1) return max_seen;  // the one sample, exactly
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    // Rank of the percentile sample, 1-based (nearest-rank definition).
    uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                          static_cast<double>(total));
    if (rank < 1) rank = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += snapshot[b];
      // The recorded max is also an upper bound of any percentile, and a
      // tighter one than the bucket bound in the top bucket.
      if (seen >= rank) return std::min(UpperBound(b), max_seen);
    }
    return std::min(UpperBound(kBuckets - 1), max_seen);
  }

  void Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// Bucket index of a value (exposed for tests).
  static size_t BucketOf(uint64_t micros) {
    const size_t b = static_cast<size_t>(std::bit_width(micros));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Largest value mapping into bucket `b`.
  static uint64_t UpperBound(size_t b) {
    return b == 0 ? 0 : (uint64_t{1} << b) - 1;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace mdseq

#endif  // MDSEQ_ENGINE_LATENCY_HISTOGRAM_H_
