#ifndef MDSEQ_UTIL_RANDOM_H_
#define MDSEQ_UTIL_RANDOM_H_

#include <cstdint>
#include <random>

namespace mdseq {

/// Seeded pseudo-random number source used throughout the library.
///
/// All generators and workloads in this project are deterministic given a
/// seed, so every experiment and test is reproducible. The class wraps a
/// Mersenne Twister and exposes the handful of draws the project needs.
class Rng {
 public:
  /// Creates a generator with the given seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Access to the underlying engine for std:: algorithms (e.g. shuffle).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace mdseq

#endif  // MDSEQ_UTIL_RANDOM_H_
