#ifndef MDSEQ_UTIL_FLAGS_H_
#define MDSEQ_UTIL_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace mdseq {

/// Tiny `--key=value` command-line parser shared by the benchmark
/// harnesses and the CLI tool. Non-flag arguments (no leading `--`) are
/// collected as positionals; a bare `--key` stores "1".
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        positional_.emplace_back(arg);
        continue;
      }
      const char* eq = std::strchr(arg + 2, '=');
      if (eq == nullptr) {
        values_[std::string(arg + 2)] = "1";
      } else {
        values_[std::string(arg + 2, eq)] = std::string(eq + 1);
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  size_t GetSize(const std::string& key, size_t default_value) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? default_value
               : static_cast<size_t>(
                     std::strtoull(it->second.c_str(), nullptr, 10));
  }

  double GetDouble(const std::string& key, double default_value) const {
    auto it = values_.find(key);
    return it == values_.end() ? default_value
                               : std::strtod(it->second.c_str(), nullptr);
  }

  std::string GetString(const std::string& key,
                        const std::string& default_value) const {
    auto it = values_.find(key);
    return it == values_.end() ? default_value : it->second;
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mdseq

#endif  // MDSEQ_UTIL_FLAGS_H_
