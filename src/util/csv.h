#ifndef MDSEQ_UTIL_CSV_H_
#define MDSEQ_UTIL_CSV_H_

#include <string>
#include <vector>

namespace mdseq {

/// Minimal CSV writer used by examples and benchmark harnesses to dump
/// sequences and experiment results for external plotting.
///
/// Values are written unquoted; callers should not pass fields containing
/// commas or newlines (the data this project emits is purely numeric plus
/// simple identifiers).
class CsvWriter {
 public:
  /// Starts a document with the given column headers.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row; the number of cells must match the header width.
  void AddRow(const std::vector<std::string>& cells);

  /// Convenience overload formatting doubles with full precision.
  void AddRow(const std::vector<double>& cells);

  /// Serializes the document (header + rows, '\n'-separated).
  std::string ToString() const;

  /// Writes the document to `path`. Returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

  /// Number of data rows added so far.
  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly (shortest representation that round-trips).
std::string FormatDouble(double value);

}  // namespace mdseq

#endif  // MDSEQ_UTIL_CSV_H_
