#include "util/simd.h"

#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define MDSEQ_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#define MDSEQ_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace mdseq::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar kernels — the dispatch fallback and the differential references.
// The loop bodies mirror Mbr::MinDist2 / SquaredDistance / the bounded
// window loop exactly (same operations, same order), so the scalar path is
// bit-identical to the pre-SIMD code.
// ---------------------------------------------------------------------------

// Columns [begin, end) of a dim-major rectangle set with row stride
// `stride`; shared by the scalar kernel and the vector-loop tails.
void MinDist2Columns(const double* qlo, const double* qhi, const double* lo,
                     const double* hi, size_t stride, size_t dim,
                     size_t begin, size_t end, double* out) {
  for (size_t i = begin; i < end; ++i) {
    double sum = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double l = lo[k * stride + i];
      const double h = hi[k * stride + i];
      double gap = 0.0;
      if (qhi[k] < l) {
        gap = l - qhi[k];
      } else if (h < qlo[k]) {
        gap = qlo[k] - h;
      }
      sum += gap * gap;
    }
    out[i] = sum;
  }
}

void SquaredDistColumns(const double* point, const double* points,
                        size_t stride, size_t dim, size_t begin, size_t end,
                        double* out) {
  for (size_t i = begin; i < end; ++i) {
    double sum = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double diff = point[k] - points[k * stride + i];
      sum += diff * diff;
    }
    out[i] = sum;
  }
}

// One row-major point pair's squared distance, dimension order.
inline double PointSquaredDist(const double* a, const double* b, size_t dim) {
  double sq = 0.0;
  for (size_t t = 0; t < dim; ++t) {
    const double diff = a[t] - b[t];
    sq += diff * diff;
  }
  return sq;
}

}  // namespace

void MinDist2BatchScalar(const double* query_low, const double* query_high,
                         const double* low, const double* high, size_t n,
                         size_t dim, double* out) {
  MinDist2Columns(query_low, query_high, low, high, n, dim, 0, n, out);
}

void SquaredDistBatchScalar(const double* point, const double* points,
                            size_t n, size_t dim, double* out) {
  SquaredDistColumns(point, points, n, dim, 0, n, out);
}

double PointSumBoundedScalar(const double* a, const double* b, size_t count,
                             size_t dim, double bound, bool* abandoned) {
  double sum = 0.0;
  for (size_t i = 0; i < count; ++i) {
    sum += std::sqrt(PointSquaredDist(a + i * dim, b + i * dim, dim));
    if (sum > bound) {
      if (abandoned != nullptr) *abandoned = true;
      return sum;
    }
  }
  if (abandoned != nullptr) *abandoned = false;
  return sum;
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86-64). Compiled with a per-function target attribute so
// the rest of the translation unit stays baseline; only explicit intrinsics
// appear in the vector loops (no FMA contraction, see the header contract).
// ---------------------------------------------------------------------------

#if MDSEQ_SIMD_X86

namespace {

__attribute__((target("avx2"))) inline double HorizontalSum(__m256d v) {
  // Fixed association (v0 + v2) + (v1 + v3): deterministic across calls.
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

__attribute__((target("avx2"))) void MinDist2BatchAvx2(
    const double* qlo, const double* qhi, const double* lo, const double* hi,
    size_t n, size_t dim, double* out) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d acc = zero;
    for (size_t k = 0; k < dim; ++k) {
      const __m256d l = _mm256_loadu_pd(lo + k * n + i);
      const __m256d h = _mm256_loadu_pd(hi + k * n + i);
      // gap = max(l - qhi, qlo - h, 0): identical values to the branchy
      // scalar gap (exactly one of the differences is positive when the
      // projections are disjoint, both are <= 0 when they overlap).
      const __m256d below = _mm256_sub_pd(l, _mm256_set1_pd(qhi[k]));
      const __m256d above = _mm256_sub_pd(_mm256_set1_pd(qlo[k]), h);
      const __m256d gap =
          _mm256_max_pd(_mm256_max_pd(below, above), zero);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(gap, gap));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  MinDist2Columns(qlo, qhi, lo, hi, n, dim, i, n, out);
}

__attribute__((target("avx2"))) void SquaredDistBatchAvx2(
    const double* point, const double* points, size_t n, size_t dim,
    double* out) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d acc = zero;
    for (size_t k = 0; k < dim; ++k) {
      const __m256d diff = _mm256_sub_pd(
          _mm256_set1_pd(point[k]), _mm256_loadu_pd(points + k * n + i));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  SquaredDistColumns(point, points, n, dim, i, n, out);
}

__attribute__((target("avx2"))) double PointSumBoundedAvx2(
    const double* a, const double* b, size_t count, size_t dim, double bound,
    bool* abandoned) {
  const __m256d zero = _mm256_setzero_pd();
  double sum = 0.0;
  size_t i = 0;
  // Blocks of four points: each block yields one vector of four squared
  // point distances, one vsqrtpd serves all four, and the running total is
  // checked against the bound once per block (partial sums are monotone,
  // so a block-granular check abandons iff some per-point check would).
  if (dim == 1) {
    for (; i + 4 <= count; i += 4) {
      const __m256d diff =
          _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
      const __m256d sq = _mm256_mul_pd(diff, diff);
      sum += HorizontalSum(_mm256_sqrt_pd(sq));
      if (sum > bound) {
        if (abandoned != nullptr) *abandoned = true;
        return sum;
      }
    }
  } else if (dim == 2) {
    for (; i + 4 <= count; i += 4) {
      const double* pa = a + i * 2;
      const double* pb = b + i * 2;
      const __m256d d0 =
          _mm256_sub_pd(_mm256_loadu_pd(pa), _mm256_loadu_pd(pb));
      const __m256d d1 =
          _mm256_sub_pd(_mm256_loadu_pd(pa + 4), _mm256_loadu_pd(pb + 4));
      // hadd pairs lanes within 128-bit halves: the result holds the four
      // squared distances in permuted order, which the horizontal sum and
      // the sqrt do not care about.
      const __m256d sq =
          _mm256_hadd_pd(_mm256_mul_pd(d0, d0), _mm256_mul_pd(d1, d1));
      sum += HorizontalSum(_mm256_sqrt_pd(sq));
      if (sum > bound) {
        if (abandoned != nullptr) *abandoned = true;
        return sum;
      }
    }
  } else if (dim == 4) {
    for (; i + 4 <= count; i += 4) {
      const double* pa = a + i * 4;
      const double* pb = b + i * 4;
      __m256d s0 = _mm256_sub_pd(_mm256_loadu_pd(pa), _mm256_loadu_pd(pb));
      __m256d s1 =
          _mm256_sub_pd(_mm256_loadu_pd(pa + 4), _mm256_loadu_pd(pb + 4));
      __m256d s2 =
          _mm256_sub_pd(_mm256_loadu_pd(pa + 8), _mm256_loadu_pd(pb + 8));
      __m256d s3 =
          _mm256_sub_pd(_mm256_loadu_pd(pa + 12), _mm256_loadu_pd(pb + 12));
      s0 = _mm256_mul_pd(s0, s0);
      s1 = _mm256_mul_pd(s1, s1);
      s2 = _mm256_mul_pd(s2, s2);
      s3 = _mm256_mul_pd(s3, s3);
      // 4x4 transpose-reduce: one vector holding the four per-point sums.
      const __m256d t0 = _mm256_hadd_pd(s0, s1);
      const __m256d t1 = _mm256_hadd_pd(s2, s3);
      const __m256d sq =
          _mm256_add_pd(_mm256_permute2f128_pd(t0, t1, 0x20),
                        _mm256_permute2f128_pd(t0, t1, 0x31));
      sum += HorizontalSum(_mm256_sqrt_pd(sq));
      if (sum > bound) {
        if (abandoned != nullptr) *abandoned = true;
        return sum;
      }
    }
  } else {
    for (; i + 4 <= count; i += 4) {
      alignas(32) double sq4[4];
      for (size_t p = 0; p < 4; ++p) {
        const double* pa = a + (i + p) * dim;
        const double* pb = b + (i + p) * dim;
        __m256d acc = zero;
        size_t t = 0;
        for (; t + 4 <= dim; t += 4) {
          const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(pa + t),
                                             _mm256_loadu_pd(pb + t));
          acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
        }
        double sq = HorizontalSum(acc);
        for (; t < dim; ++t) {
          const double diff = pa[t] - pb[t];
          sq += diff * diff;
        }
        sq4[p] = sq;
      }
      sum += HorizontalSum(_mm256_sqrt_pd(_mm256_load_pd(sq4)));
      if (sum > bound) {
        if (abandoned != nullptr) *abandoned = true;
        return sum;
      }
    }
  }
  // Tail points that do not fill a block.
  for (; i < count; ++i) {
    sum += std::sqrt(PointSquaredDist(a + i * dim, b + i * dim, dim));
    if (sum > bound) {
      if (abandoned != nullptr) *abandoned = true;
      return sum;
    }
  }
  if (abandoned != nullptr) *abandoned = false;
  return sum;
}

}  // namespace

#endif  // MDSEQ_SIMD_X86

// ---------------------------------------------------------------------------
// NEON kernels (aarch64). NEON is baseline on AArch64, so no target
// attribute or CPU probing is needed; 2-lane double vectors.
// ---------------------------------------------------------------------------

#if MDSEQ_SIMD_NEON

namespace {

void MinDist2BatchNeon(const double* qlo, const double* qhi,
                       const double* lo, const double* hi, size_t n,
                       size_t dim, double* out) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t acc = zero;
    for (size_t k = 0; k < dim; ++k) {
      const float64x2_t l = vld1q_f64(lo + k * n + i);
      const float64x2_t h = vld1q_f64(hi + k * n + i);
      const float64x2_t below = vsubq_f64(l, vdupq_n_f64(qhi[k]));
      const float64x2_t above = vsubq_f64(vdupq_n_f64(qlo[k]), h);
      const float64x2_t gap = vmaxq_f64(vmaxq_f64(below, above), zero);
      acc = vaddq_f64(acc, vmulq_f64(gap, gap));
    }
    vst1q_f64(out + i, acc);
  }
  MinDist2Columns(qlo, qhi, lo, hi, n, dim, i, n, out);
}

void SquaredDistBatchNeon(const double* point, const double* points,
                          size_t n, size_t dim, double* out) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t acc = zero;
    for (size_t k = 0; k < dim; ++k) {
      const float64x2_t diff =
          vsubq_f64(vdupq_n_f64(point[k]), vld1q_f64(points + k * n + i));
      acc = vaddq_f64(acc, vmulq_f64(diff, diff));
    }
    vst1q_f64(out + i, acc);
  }
  SquaredDistColumns(point, points, n, dim, i, n, out);
}

double PointSumBoundedNeon(const double* a, const double* b, size_t count,
                           size_t dim, double bound, bool* abandoned) {
  double sum = 0.0;
  size_t i = 0;
  // Blocks of two points; one vsqrtq serves both lanes.
  for (; i + 2 <= count; i += 2) {
    double sq2[2];
    for (size_t p = 0; p < 2; ++p) {
      const double* pa = a + (i + p) * dim;
      const double* pb = b + (i + p) * dim;
      float64x2_t acc = vdupq_n_f64(0.0);
      size_t t = 0;
      for (; t + 2 <= dim; t += 2) {
        const float64x2_t diff =
            vsubq_f64(vld1q_f64(pa + t), vld1q_f64(pb + t));
        acc = vaddq_f64(acc, vmulq_f64(diff, diff));
      }
      double sq = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
      for (; t < dim; ++t) {
        const double diff = pa[t] - pb[t];
        sq += diff * diff;
      }
      sq2[p] = sq;
    }
    const float64x2_t roots = vsqrtq_f64(vld1q_f64(sq2));
    sum += vgetq_lane_f64(roots, 0) + vgetq_lane_f64(roots, 1);
    if (sum > bound) {
      if (abandoned != nullptr) *abandoned = true;
      return sum;
    }
  }
  for (; i < count; ++i) {
    sum += std::sqrt(PointSquaredDist(a + i * dim, b + i * dim, dim));
    if (sum > bound) {
      if (abandoned != nullptr) *abandoned = true;
      return sum;
    }
  }
  if (abandoned != nullptr) *abandoned = false;
  return sum;
}

}  // namespace

#endif  // MDSEQ_SIMD_NEON

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

namespace {

struct DispatchTable {
  Level level = Level::kScalar;
  void (*mindist2)(const double*, const double*, const double*,
                   const double*, size_t, size_t, double*) =
      &MinDist2BatchScalar;
  void (*sqdist)(const double*, const double*, size_t, size_t, double*) =
      &SquaredDistBatchScalar;
  double (*point_sum)(const double*, const double*, size_t, size_t, double,
                      bool*) = &PointSumBoundedScalar;
};

// -1: follow the environment; 0/1: test override.
int g_force_scalar_override = -1;

bool EnvForceScalar() {
  const char* value = std::getenv("MDSEQ_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

bool ForceScalarActive() {
#if defined(MDSEQ_FORCE_SCALAR_BUILD)
  return true;
#else
  if (g_force_scalar_override >= 0) return g_force_scalar_override != 0;
  return EnvForceScalar();
#endif
}

DispatchTable MakeTable() {
  DispatchTable table;
  if (ForceScalarActive()) return table;
#if MDSEQ_SIMD_X86
  if (HostSupportsAvx2()) {
    table.level = Level::kAvx2;
    table.mindist2 = &MinDist2BatchAvx2;
    table.sqdist = &SquaredDistBatchAvx2;
    table.point_sum = &PointSumBoundedAvx2;
  }
#elif MDSEQ_SIMD_NEON
  table.level = Level::kNeon;
  table.mindist2 = &MinDist2BatchNeon;
  table.sqdist = &SquaredDistBatchNeon;
  table.point_sum = &PointSumBoundedNeon;
#endif
  return table;
}

// Function-local static: thread-safe one-time init, then a plain load per
// call. The test hooks rewrite it from single-threaded setup code.
DispatchTable* Table() {
  static DispatchTable table = MakeTable();
  return &table;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

Level ActiveLevel() { return Table()->level; }

bool HostSupportsAvx2() {
#if MDSEQ_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool HostSupportsNeon() {
#if MDSEQ_SIMD_NEON
  return true;
#else
  return false;
#endif
}

bool ForceScalarConfigured() { return ForceScalarActive(); }

void SetForceScalarForTesting(bool force) {
  g_force_scalar_override = force ? 1 : 0;
  *Table() = MakeTable();
}

void ReinitFromEnvForTesting() {
  g_force_scalar_override = -1;
  *Table() = MakeTable();
}

void MinDist2Batch(const double* query_low, const double* query_high,
                   const double* low, const double* high, size_t n,
                   size_t dim, double* out) {
  Table()->mindist2(query_low, query_high, low, high, n, dim, out);
}

void SquaredDistBatch(const double* point, const double* points, size_t n,
                      size_t dim, double* out) {
  Table()->sqdist(point, points, n, dim, out);
}

double PointSumBounded(const double* a, const double* b, size_t count,
                       size_t dim, double bound, bool* abandoned) {
  return Table()->point_sum(a, b, count, dim, bound, abandoned);
}

}  // namespace mdseq::simd
