#ifndef MDSEQ_UTIL_CHECK_H_
#define MDSEQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Precondition checking for a library that does not throw exceptions across
// its public API. A failed MDSEQ_CHECK prints the failing condition with its
// source location and aborts; it is meant for programmer errors (dimension
// mismatches, out-of-range indices), not for recoverable conditions, which
// are reported through return values instead.
#define MDSEQ_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "MDSEQ_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define MDSEQ_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "MDSEQ_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

// Debug-only check: compiled out in release builds so it can guard hot loops.
#ifdef NDEBUG
#define MDSEQ_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define MDSEQ_DCHECK(cond) MDSEQ_CHECK(cond)
#endif

#endif  // MDSEQ_UTIL_CHECK_H_
