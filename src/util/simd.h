#ifndef MDSEQ_UTIL_SIMD_H_
#define MDSEQ_UTIL_SIMD_H_

#include <cstddef>

/// Portable SIMD kernels behind one runtime dispatch point.
///
/// The three hot inner loops of the search path — squared rectangle
/// distance (Dmbr), squared point distance against many points, and the
/// per-window point-distance sum of the verification profile — are
/// implemented once per instruction set (AVX2 on x86-64, NEON on aarch64,
/// plain scalar everywhere) and selected at runtime from cached CPU-feature
/// detection. Callers see ordinary functions; the indirection is one
/// function-pointer load.
///
/// Layout contract: the batched kernels take *structure-of-arrays* inputs.
/// A set of `n` rectangles (or points) of dimensionality `dim` is stored
/// dimension-major: coordinate `k` of element `i` lives at `[k * n + i]`,
/// so one instruction loads the same coordinate of adjacent elements.
///
/// Bit-compatibility contract (checked by tests/kernel_equivalence_test.cc):
///  - `MinDist2Batch` and `SquaredDistBatch` are bit-identical to their
///    scalar references for every element: each lane performs the same
///    subtract / max / multiply / add sequence in the same order, and no
///    fused-multiply-add contraction is permitted (the kernels use explicit
///    mul + add intrinsics).
///  - `PointSumBounded` reassociates the reduction (vector partial sums
///    within a point, block-wise accumulation across points), so its result
///    agrees with the scalar reference only to reassociation error
///    (~1 ulp per term). Differential tests carry an explicit tolerance,
///    and the early-abandon slack in core/distance.cc (1e-12 relative)
///    dwarfs the reassociation error, so abandon *decisions* stay sound.
///
/// Forcing the scalar path: set the `MDSEQ_FORCE_SCALAR` environment
/// variable (any value but "0") before the first kernel call, or configure
/// the build with `-DMDSEQ_FORCE_SCALAR=ON` to compile the dispatch out
/// entirely. CI uses this to exercise both paths on any machine.
namespace mdseq::simd {

/// Instruction set the dispatched kernels run on.
enum class Level {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// "scalar" / "avx2" / "neon" — stable names for logs and benchmarks.
const char* LevelName(Level level);

/// The level the dispatched entry points currently use. Decided once from
/// CPU features and `MDSEQ_FORCE_SCALAR`, then cached.
Level ActiveLevel();

/// Raw host capability, ignoring any force-scalar override.
bool HostSupportsAvx2();
bool HostSupportsNeon();

/// True when the scalar path is forced — by the `MDSEQ_FORCE_SCALAR`
/// environment variable, the CMake toggle, or `SetForceScalarForTesting`.
bool ForceScalarConfigured();

/// Test/bench hooks: override (or clear back to the environment) the
/// force-scalar decision and rebuild the dispatch table. Not thread-safe
/// against concurrently running kernels — call from single-threaded
/// setup code only.
void SetForceScalarForTesting(bool force);
void ReinitFromEnvForTesting();

/// Squared minimum Euclidean distance (the paper's Dmbr, squared) between
/// one query rectangle `[query_low, query_high]` (plain `dim`-sized arrays)
/// and `n` rectangles in SoA layout (`low[k * n + i]`, `high[k * n + i]`).
/// `out[i]` receives the squared distance to rectangle `i`. Bit-identical
/// to `Mbr::MinDist2` per pair.
void MinDist2Batch(const double* query_low, const double* query_high,
                   const double* low, const double* high, size_t n,
                   size_t dim, double* out);
void MinDist2BatchScalar(const double* query_low, const double* query_high,
                         const double* low, const double* high, size_t n,
                         size_t dim, double* out);

/// Squared Euclidean distance from one point (`dim`-sized array) to `n`
/// points in SoA layout (`points[k * n + i]`). Bit-identical to the scalar
/// accumulation in dimension order.
void SquaredDistBatch(const double* point, const double* points, size_t n,
                      size_t dim, double* out);
void SquaredDistBatchScalar(const double* point, const double* points,
                            size_t n, size_t dim, double* out);

/// Sum over `count` aligned points of the Euclidean point distance between
/// rows of `a` and `b` (both contiguous row-major, `count * dim` doubles):
/// the inner kernel of the window distance profile. Stops early once the
/// partial sum exceeds `bound` (pass +infinity for an exact, unbounded
/// sum); `*abandoned` reports whether that happened, and the returned
/// partial sum is then only a witness that the bound was exceeded.
double PointSumBounded(const double* a, const double* b, size_t count,
                       size_t dim, double bound, bool* abandoned);
double PointSumBoundedScalar(const double* a, const double* b, size_t count,
                             size_t dim, double bound, bool* abandoned);

}  // namespace mdseq::simd

#endif  // MDSEQ_UTIL_SIMD_H_
