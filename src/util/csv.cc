#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace mdseq {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  MDSEQ_CHECK(cells.size() == header_.size());
  rows_.push_back(cells);
}

void CsvWriter::AddRow(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(FormatDouble(v));
  AddRow(formatted);
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += cells[i];
    }
    out.push_back('\n');
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

bool CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToString();
  return static_cast<bool>(file);
}

std::string FormatDouble(double value) {
  char buf[64];
  // %.17g round-trips but is noisy; try increasing precision until the
  // printed value parses back exactly.
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace mdseq
