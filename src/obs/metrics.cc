#include "obs/metrics.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "obs/json.h"
#include "util/check.h"

namespace mdseq::obs {

namespace {

// %.17g round-trips doubles; trailing-zero noise is acceptable in an
// exposition format read by machines.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string FormatBound(double bound) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", bound);
  return buffer;
}

void AppendHelpAndType(const std::string& name, const std::string& help,
                       const char* type, std::string* out) {
  if (!help.empty()) {
    out->append("# HELP ").append(name).push_back(' ');
    // The text format escapes backslashes and newlines in help strings.
    for (const char c : help) {
      if (c == '\\') {
        out->append("\\\\");
      } else if (c == '\n') {
        out->append("\\n");
      } else {
        out->push_back(c);
      }
    }
    out->push_back('\n');
  }
  out->append("# TYPE ").append(name).push_back(' ');
  out->append(type).push_back('\n');
}

}  // namespace

std::string MetricsRegistry::EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out.append("\\\\");
    } else if (c == '"') {
      out.append("\\\"");
    } else if (c == '\n') {
      out.append("\\n");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string RenderLabelSuffix(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    MDSEQ_CHECK(MetricsRegistry::ValidName(key));
    if (!first) out.push_back(',');
    first = false;
    out.append(key).append("=\"");
    out.append(MetricsRegistry::EscapeLabelValue(value));
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      exemplars_(new Exemplar[bounds_.size() + 1]) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    MDSEQ_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

bool MetricsRegistry::ValidName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!head(name[i]) &&
        !std::isdigit(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  return true;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetCounter(name, help, Labels{});
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  MDSEQ_CHECK(ValidName(name));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    MDSEQ_CHECK(it->second.kind == Kind::kCounter);
    return it->second.counter.get();
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.help = help;
  entry.labels = labels;
  entry.label_suffix = RenderLabelSuffix(labels);
  entry.counter = std::make_unique<Counter>();
  Counter* handle = entry.counter.get();
  entries_.emplace(name, std::move(entry));
  return handle;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetGauge(name, help, Labels{});
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  MDSEQ_CHECK(ValidName(name));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    MDSEQ_CHECK(it->second.kind == Kind::kGauge);
    return it->second.gauge.get();
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.help = help;
  entry.labels = labels;
  entry.label_suffix = RenderLabelSuffix(labels);
  entry.gauge = std::make_unique<Gauge>();
  Gauge* handle = entry.gauge.get();
  entries_.emplace(name, std::move(entry));
  return handle;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  MDSEQ_CHECK(ValidName(name));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    MDSEQ_CHECK(it->second.kind == Kind::kHistogram);
    return it->second.histogram.get();
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.help = help;
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* handle = entry.histogram.get();
  entries_.emplace(name, std::move(entry));
  return handle;
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[128];
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        AppendHelpAndType(name, entry.help, "counter", &out);
        std::snprintf(line, sizeof(line), " %" PRIu64 "\n",
                      entry.counter->value());
        out.append(name).append(entry.label_suffix).append(line);
        break;
      }
      case Kind::kGauge: {
        AppendHelpAndType(name, entry.help, "gauge", &out);
        out.append(name).append(entry.label_suffix).push_back(' ');
        out.append(FormatDouble(entry.gauge->value())).push_back('\n');
        break;
      }
      case Kind::kHistogram: {
        AppendHelpAndType(name, entry.help, "histogram", &out);
        const Histogram& h = *entry.histogram;
        // OpenMetrics-style exemplar suffix on bucket lines that have one;
        // buckets fed only by plain Observe render exactly as before.
        auto append_exemplar = [&](size_t bucket) {
          uint64_t trace_id = 0;
          double value = 0.0;
          if (!h.bucket_exemplar(bucket, &trace_id, &value)) {
            out.push_back('\n');
            return;
          }
          std::snprintf(line, sizeof(line),
                        " # {trace_id=\"%" PRIu64 "\"} ", trace_id);
          out.append(line);
          out.append(FormatDouble(value)).push_back('\n');
        };
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          out.append(name).append("_bucket{le=\"");
          out.append(FormatBound(h.bounds()[i]));
          std::snprintf(line, sizeof(line), "\"} %" PRIu64, cumulative);
          out.append(line);
          append_exemplar(i);
        }
        cumulative += h.bucket_count(h.bounds().size());
        std::snprintf(line, sizeof(line), "\"} %" PRIu64, cumulative);
        out.append(name).append("_bucket{le=\"+Inf").append(line);
        append_exemplar(h.bounds().size());
        out.append(name).append("_sum ");
        out.append(FormatDouble(h.sum())).push_back('\n');
        std::snprintf(line, sizeof(line), "_count %" PRIu64 "\n", h.count());
        out.append(name).append(line);
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  char line[64];
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n  ").append(JsonQuote(name)).append(": {");
    if (!entry.labels.empty()) {
      out.append("\"labels\": {");
      bool first_label = true;
      for (const auto& [key, value] : entry.labels) {
        if (!first_label) out.append(", ");
        first_label = false;
        out.append(JsonQuote(key)).append(": ").append(JsonQuote(value));
      }
      out.append("}, ");
    }
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(line, sizeof(line), "%" PRIu64,
                      entry.counter->value());
        out.append("\"type\": \"counter\", \"value\": ").append(line);
        break;
      case Kind::kGauge:
        out.append("\"type\": \"gauge\", \"value\": ");
        out.append(FormatDouble(entry.gauge->value()));
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out.append("\"type\": \"histogram\", \"bounds\": [");
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) out.append(", ");
          out.append(FormatDouble(h.bounds()[i]));
        }
        out.append("], \"counts\": [");
        for (size_t i = 0; i <= h.bounds().size(); ++i) {
          if (i > 0) out.append(", ");
          std::snprintf(line, sizeof(line), "%" PRIu64, h.bucket_count(i));
          out.append(line);
        }
        std::snprintf(line, sizeof(line), "%" PRIu64, h.count());
        out.append("], \"count\": ").append(line);
        out.append(", \"sum\": ").append(FormatDouble(h.sum()));
        break;
      }
    }
    out.push_back('}');
  }
  out.append("\n}\n");
  return out;
}

std::vector<double> DefaultLatencyBoundsSeconds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
}

#ifndef MDSEQ_VERSION
#define MDSEQ_VERSION "unknown"
#endif
#ifndef MDSEQ_BUILD_TYPE
#define MDSEQ_BUILD_TYPE "unknown"
#endif

void RegisterBuildInfo(MetricsRegistry* registry) {
  registry
      ->GetGauge("mdseq_build_info",
                 "Build identity; value is constant 1, the data is in the "
                 "labels",
                 {{"version", MDSEQ_VERSION}, {"build_type", MDSEQ_BUILD_TYPE}})
      ->Set(1.0);
}

}  // namespace mdseq::obs
