#include "obs/workload_log.h"

#include <cstring>
#include <iterator>

namespace mdseq {
namespace obs {

namespace {

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

void PutU32(std::vector<uint8_t>* out, uint32_t value) {
  const size_t at = out->size();
  out->resize(at + sizeof(value));
  std::memcpy(out->data() + at, &value, sizeof(value));
}

uint64_t FileSize(std::FILE* file) {
  const long at = std::ftell(file);
  if (at < 0) return 0;
  if (std::fseek(file, 0, SEEK_END) != 0) return 0;
  const long end = std::ftell(file);
  std::fseek(file, at, SEEK_SET);
  return end < 0 ? 0 : static_cast<uint64_t>(end);
}

}  // namespace

uint32_t WorkloadCrc32(const void* bytes, size_t count) {
  const uint32_t* table = Crc32Table();
  const uint8_t* at = static_cast<const uint8_t*>(bytes);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < count; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ at[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

bool WorkloadLogWriter::Open(const std::string& path, const Options& options) {
  Close();
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) return false;
  file_ = file;
  path_ = path;
  options_ = options;
  current_bytes_ = FileSize(file_);
  bytes_written_ = 0;
  rotations_ = 0;
  return true;
}

bool WorkloadLogWriter::Rotate() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string previous = path_ + ".1";
  std::remove(previous.c_str());
  if (std::rename(path_.c_str(), previous.c_str()) != 0) return false;
  std::FILE* file = std::fopen(path_.c_str(), "ab");
  if (file == nullptr) return false;
  file_ = file;
  current_bytes_ = 0;
  ++rotations_;
  return true;
}

bool WorkloadLogWriter::Append(uint8_t type, const void* payload,
                               size_t count) {
  if (file_ == nullptr) return false;
  // body = length | type | payload; the frame prepends body's crc.
  std::vector<uint8_t> frame;
  frame.reserve(sizeof(uint32_t) * 2 + 1 + count);
  std::vector<uint8_t> body;
  body.reserve(sizeof(uint32_t) + 1 + count);
  PutU32(&body, static_cast<uint32_t>(count));
  body.push_back(type);
  const size_t at = body.size();
  body.resize(at + count);
  if (count > 0) std::memcpy(body.data() + at, payload, count);
  PutU32(&frame, WorkloadCrc32(body.data(), body.size()));
  frame.insert(frame.end(), body.begin(), body.end());

  if (options_.max_bytes > 0 && current_bytes_ > 0 &&
      current_bytes_ + frame.size() > options_.max_bytes) {
    if (!Rotate()) return false;
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return false;
  }
  std::fflush(file_);
  current_bytes_ += frame.size();
  bytes_written_ += frame.size();
  return true;
}

void WorkloadLogWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

WorkloadScanResult ScanWorkloadLog(const std::string& path) {
  WorkloadScanResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return result;  // Missing file == empty log.
  std::vector<uint8_t> head(sizeof(uint32_t) * 2);
  for (;;) {
    const size_t got = std::fread(head.data(), 1, head.size(), file);
    if (got == 0) break;  // Clean EOF on a frame boundary.
    if (got < head.size()) {
      result.clean_eof = false;  // Torn frame header.
      break;
    }
    uint32_t crc = 0;
    uint32_t length = 0;
    std::memcpy(&crc, head.data(), sizeof(crc));
    std::memcpy(&length, head.data() + sizeof(crc), sizeof(length));
    std::vector<uint8_t> body(sizeof(length) + 1 + length);
    std::memcpy(body.data(), &length, sizeof(length));
    const size_t rest = 1 + static_cast<size_t>(length);
    if (std::fread(body.data() + sizeof(length), 1, rest, file) != rest) {
      result.clean_eof = false;  // Torn payload.
      break;
    }
    if (WorkloadCrc32(body.data(), body.size()) != crc) {
      result.clean_eof = false;  // Corrupt frame; stop here.
      break;
    }
    WorkloadFrame frame;
    frame.type = body[sizeof(length)];
    frame.payload.assign(body.begin() + sizeof(length) + 1, body.end());
    result.frames.push_back(std::move(frame));
    result.bytes_scanned += head.size() + body.size();
  }
  std::fclose(file);
  return result;
}

WorkloadScanResult ScanWorkloadLogWithRotation(const std::string& path) {
  WorkloadScanResult previous = ScanWorkloadLog(path + ".1");
  WorkloadScanResult current = ScanWorkloadLog(path);
  previous.frames.insert(previous.frames.end(),
                         std::make_move_iterator(current.frames.begin()),
                         std::make_move_iterator(current.frames.end()));
  previous.clean_eof = previous.clean_eof && current.clean_eof;
  previous.bytes_scanned += current.bytes_scanned;
  return previous;
}

}  // namespace obs
}  // namespace mdseq
