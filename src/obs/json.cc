#include "obs/json.h"

#include <cctype>
#include <cstdio>

namespace mdseq::obs {

void JsonEscape(std::string_view text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  JsonEscape(text, &out);
  out.push_back('"');
  return out;
}

namespace {

// Cursor over the validated text; all Parse* helpers advance it past the
// construct they accept and return false (with `error` set) on malformed
// input.
struct Cursor {
  std::string_view text;
  size_t at = 0;
  std::string* error = nullptr;

  bool Fail(const char* message) {
    if (error != nullptr) {
      *error = std::string(message) + " at byte " + std::to_string(at);
    }
    return false;
  }
  bool AtEnd() const { return at >= text.size(); }
  char Peek() const { return text[at]; }
  void SkipWhitespace() {
    while (!AtEnd() && (text[at] == ' ' || text[at] == '\t' ||
                        text[at] == '\n' || text[at] == '\r')) {
      ++at;
    }
  }
};

bool ParseValue(Cursor* c, int depth);

bool ParseLiteral(Cursor* c, std::string_view word) {
  if (c->text.substr(c->at, word.size()) != word) {
    return c->Fail("invalid literal");
  }
  c->at += word.size();
  return true;
}

bool ParseString(Cursor* c) {
  if (c->AtEnd() || c->Peek() != '"') return c->Fail("expected '\"'");
  ++c->at;
  while (!c->AtEnd()) {
    const char ch = c->text[c->at];
    if (static_cast<unsigned char>(ch) < 0x20) {
      return c->Fail("control character in string");
    }
    if (ch == '"') {
      ++c->at;
      return true;
    }
    if (ch == '\\') {
      ++c->at;
      if (c->AtEnd()) return c->Fail("dangling escape");
      const char esc = c->text[c->at];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          ++c->at;
          if (c->AtEnd() || !std::isxdigit(static_cast<unsigned char>(
                                c->text[c->at]))) {
            return c->Fail("bad \\u escape");
          }
        }
      } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                 esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
        return c->Fail("bad escape character");
      }
    }
    ++c->at;
  }
  return c->Fail("unterminated string");
}

bool ParseNumber(Cursor* c) {
  const size_t start = c->at;
  if (!c->AtEnd() && c->Peek() == '-') ++c->at;
  if (c->AtEnd() || !std::isdigit(static_cast<unsigned char>(c->Peek()))) {
    return c->Fail("expected digit");
  }
  while (!c->AtEnd() && std::isdigit(static_cast<unsigned char>(c->Peek()))) {
    ++c->at;
  }
  if (!c->AtEnd() && c->Peek() == '.') {
    ++c->at;
    if (c->AtEnd() || !std::isdigit(static_cast<unsigned char>(c->Peek()))) {
      return c->Fail("expected fraction digit");
    }
    while (!c->AtEnd() &&
           std::isdigit(static_cast<unsigned char>(c->Peek()))) {
      ++c->at;
    }
  }
  if (!c->AtEnd() && (c->Peek() == 'e' || c->Peek() == 'E')) {
    ++c->at;
    if (!c->AtEnd() && (c->Peek() == '+' || c->Peek() == '-')) ++c->at;
    if (c->AtEnd() || !std::isdigit(static_cast<unsigned char>(c->Peek()))) {
      return c->Fail("expected exponent digit");
    }
    while (!c->AtEnd() &&
           std::isdigit(static_cast<unsigned char>(c->Peek()))) {
      ++c->at;
    }
  }
  return c->at > start;
}

bool ParseObject(Cursor* c, int depth) {
  ++c->at;  // consume '{'
  c->SkipWhitespace();
  if (!c->AtEnd() && c->Peek() == '}') {
    ++c->at;
    return true;
  }
  while (true) {
    c->SkipWhitespace();
    if (!ParseString(c)) return false;
    c->SkipWhitespace();
    if (c->AtEnd() || c->Peek() != ':') return c->Fail("expected ':'");
    ++c->at;
    if (!ParseValue(c, depth)) return false;
    c->SkipWhitespace();
    if (c->AtEnd()) return c->Fail("unterminated object");
    if (c->Peek() == ',') {
      ++c->at;
      continue;
    }
    if (c->Peek() == '}') {
      ++c->at;
      return true;
    }
    return c->Fail("expected ',' or '}'");
  }
}

bool ParseArray(Cursor* c, int depth) {
  ++c->at;  // consume '['
  c->SkipWhitespace();
  if (!c->AtEnd() && c->Peek() == ']') {
    ++c->at;
    return true;
  }
  while (true) {
    if (!ParseValue(c, depth)) return false;
    c->SkipWhitespace();
    if (c->AtEnd()) return c->Fail("unterminated array");
    if (c->Peek() == ',') {
      ++c->at;
      continue;
    }
    if (c->Peek() == ']') {
      ++c->at;
      return true;
    }
    return c->Fail("expected ',' or ']'");
  }
}

bool ParseValue(Cursor* c, int depth) {
  if (depth > 256) return c->Fail("nesting too deep");
  c->SkipWhitespace();
  if (c->AtEnd()) return c->Fail("expected value");
  switch (c->Peek()) {
    case '{':
      return ParseObject(c, depth + 1);
    case '[':
      return ParseArray(c, depth + 1);
    case '"':
      return ParseString(c);
    case 't':
      return ParseLiteral(c, "true");
    case 'f':
      return ParseLiteral(c, "false");
    case 'n':
      return ParseLiteral(c, "null");
    default:
      return ParseNumber(c);
  }
}

}  // namespace

bool JsonValidate(std::string_view text, std::string* error) {
  Cursor cursor{text, 0, error};
  if (!ParseValue(&cursor, 0)) return false;
  cursor.SkipWhitespace();
  if (!cursor.AtEnd()) return cursor.Fail("trailing garbage");
  return true;
}

}  // namespace mdseq::obs
