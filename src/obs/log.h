#ifndef MDSEQ_OBS_LOG_H_
#define MDSEQ_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mdseq::obs {

/// Severity ladder. `kOff` is a level filter only — records are never
/// emitted at it.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug" / "info" / "warn" / "error".
const char* LogLevelName(LogLevel level);

/// Parses a level name (as printed by `LogLevelName`, plus "off"); returns
/// false and leaves `*level` untouched on an unknown name.
bool ParseLogLevel(std::string_view name, LogLevel* level);

/// Destination for completed log lines. `Write` receives one full JSON
/// line (newline included) and may be called from any thread — sinks
/// serialize internally.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(std::string_view line) = 0;
};

/// Default sink: one `fwrite` per line to stderr under a mutex, so lines
/// from concurrent threads never interleave.
class StderrLogSink : public LogSink {
 public:
  void Write(std::string_view line) override;

 private:
  std::mutex mutex_;
};

/// Appends lines to a file opened at construction. `ok()` is false when
/// the file could not be opened (writes are then dropped).
class FileLogSink : public LogSink {
 public:
  explicit FileLogSink(const std::string& path);
  ~FileLogSink() override;
  bool ok() const { return file_ != nullptr; }
  void Write(std::string_view line) override;

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

/// Keeps every line in memory — the test sink.
class CaptureLogSink : public LogSink {
 public:
  void Write(std::string_view line) override;
  std::vector<std::string> lines() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

class Logger;

/// One structured log record, built field by field and emitted as a single
/// JSON line when the record goes out of scope:
///
///   LogRecord(&logger, LogLevel::kWarn, "query_rejected")
///       .U64("query_id", id)
///       .U64("queue_depth", depth);
///
/// Fields are appended to a per-thread buffer (no allocation after the
/// first record on a thread), and the finished line is handed to the sink
/// in one call. A record whose level is below the logger's threshold costs
/// one atomic load and nothing else.
class LogRecord {
 public:
  LogRecord(Logger* logger, LogLevel level, const char* event);
  ~LogRecord();
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  LogRecord& Str(const char* key, std::string_view value);
  LogRecord& U64(const char* key, uint64_t value);
  LogRecord& I64(const char* key, int64_t value);
  LogRecord& F64(const char* key, double value);
  LogRecord& Bool(const char* key, bool value);

 private:
  void Key(const char* key);

  Logger* logger_ = nullptr;  // null = suppressed record
  std::string* line_ = nullptr;
};

/// Leveled structured logger: JSON lines, per-thread formatting buffers,
/// and an atomically swappable sink. The level gate is one relaxed atomic
/// load, so disabled log statements are free on the hot path; the sink is
/// held by `shared_ptr` and swapped under a mutex, so a writer racing a
/// swap finishes its line on the old sink — no line is torn or lost.
///
/// `Logger::Global()` is the process-wide instance the engine logs to
/// (admission rejections, sheds, deadline expiries, slow queries). Its
/// default threshold is `kWarn` over stderr, so a quiet process stays
/// quiet.
class Logger {
 public:
  explicit Logger(LogLevel level = LogLevel::kWarn);

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  static Logger& Global();

  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool Enabled(LogLevel level) const {
    return level != LogLevel::kOff &&
           static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Replaces the sink; in-flight records finish on the sink they started
  /// with. Null resets to the stderr sink.
  void SetSink(std::shared_ptr<LogSink> sink);
  std::shared_ptr<LogSink> sink() const;

  /// Convenience entry points:
  ///   logger.Warn("event").U64("k", v);
  LogRecord Debug(const char* event) {
    return LogRecord(this, LogLevel::kDebug, event);
  }
  LogRecord Info(const char* event) {
    return LogRecord(this, LogLevel::kInfo, event);
  }
  LogRecord Warn(const char* event) {
    return LogRecord(this, LogLevel::kWarn, event);
  }
  LogRecord Error(const char* event) {
    return LogRecord(this, LogLevel::kError, event);
  }

 private:
  friend class LogRecord;

  std::atomic<int> level_;
  mutable std::mutex sink_mutex_;
  std::shared_ptr<LogSink> sink_;
};

}  // namespace mdseq::obs

#endif  // MDSEQ_OBS_LOG_H_
