#ifndef MDSEQ_OBS_EXPLAIN_H_
#define MDSEQ_OBS_EXPLAIN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mdseq::obs {

/// Everything an EXPLAIN report needs, as plain numbers. The obs layer is a
/// leaf library (core depends on it, not the other way around), so callers
/// copy these out of a `SearchResult` — `mdseq::ToExplainStats` in
/// core/search.h does exactly that.
struct ExplainStats {
  // Query / database shape.
  size_t query_points = 0;
  size_t dim = 0;
  double epsilon = 0.0;
  bool verified = false;
  bool disk = false;
  bool interrupted = false;
  size_t database_sequences = 0;

  // Phase 1: query partitioning.
  size_t query_mbrs = 0;
  uint64_t partition_ns = 0;

  // Phase 2: first pruning (Dmbr via the R-tree).
  size_t phase2_candidates = 0;
  uint64_t node_accesses = 0;
  uint64_t page_hits = 0;    // buffer-pool hits (disk databases only)
  uint64_t page_misses = 0;  // real page reads (disk databases only)
  uint64_t first_pruning_ns = 0;

  // Phase 3: second pruning (Dnorm) + solution-interval assembly.
  size_t phase3_matches = 0;
  uint64_t dnorm_evaluations = 0;
  uint64_t second_pruning_ns = 0;   // includes assembly (a sub-slice below)
  uint64_t interval_assembly_ns = 0;
  size_t solution_intervals = 0;    // disjoint intervals over all matches
  size_t solution_points = 0;       // points those intervals cover

  // Optional refinement (SearchVerified).
  size_t verified_matches = 0;
  uint64_t verify_ns = 0;

  // Pruning-cascade cost accounting: early-abandon wins per stage and the
  // raw sequence bytes verification materialized. The prefilter triple
  // mirrors `SearchStats`: probes the centroid/radius pre-check dropped,
  // candidates it let into second pruning, and its wall time (a sub-slice
  // of `second_pruning_ns`).
  uint64_t probe_abandons = 0;
  uint64_t verify_abandons = 0;
  uint64_t bytes_read = 0;
  uint64_t prefilter_abandons = 0;
  uint64_t prefilter_survivors = 0;
  uint64_t prefilter_ns = 0;

  // Approximate tier: candidates the quality budget skipped and the
  // certified distance-error bound. `approx_certified_epsilon == epsilon`
  // (and zero skipped) means the budget was not binding — the answer is
  // exact. For coordinator queries the bound is the weakest across shards.
  uint64_t approx_candidates_skipped = 0;
  double approx_certified_epsilon = 0.0;

  // Coordinator queries: shard coverage and fan-out/merge attribution
  // (all zero for single-database queries, `shards` then empty).
  uint32_t shards_total = 0;
  uint32_t shards_failed = 0;
  uint64_t fanout_wait_ns = 0;
  uint64_t merge_ns = 0;

  /// One row per shard of a coordinator query — the per-shard
  /// pruning-cascade table. Plain numbers copied from the coordinator's
  /// `ShardQueryStats` breakdown.
  struct ShardRow {
    uint32_t shard = 0;
    bool ok = true;
    bool interrupted = false;
    uint64_t rpc_ns = 0;
    uint64_t sequences = 0;
    uint64_t phase2_candidates = 0;
    uint64_t filter_matches = 0;
    uint64_t phase3_matches = 0;
    uint64_t dnorm_evaluations = 0;
    uint64_t probe_abandons = 0;
    uint64_t verify_abandons = 0;
    uint64_t bytes_read = 0;
    uint64_t prefilter_abandons = 0;
    uint64_t prefilter_survivors = 0;
    uint64_t total_ns = 0;
  };
  std::vector<ShardRow> shards;

  /// Wall time of the whole search, phase sum (assembly is inside phase 3).
  uint64_t TotalNs() const {
    return partition_ns + first_pruning_ns + second_pruning_ns + verify_ns;
  }
};

/// Human-readable per-query EXPLAIN report: candidates in/out per phase,
/// pruning ratios, page reads, and per-phase wall time. Every number is
/// taken verbatim from `stats`, which is filled from `SearchStats` — so the
/// report is consistent with the engine counters by construction.
std::string RenderExplainReport(const ExplainStats& stats);

/// The same report as one machine-readable JSON object (validated by the
/// CLI smoke test).
std::string ExplainJson(const ExplainStats& stats);

}  // namespace mdseq::obs

#endif  // MDSEQ_OBS_EXPLAIN_H_
