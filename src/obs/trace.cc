#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.h"
#include "util/check.h"

namespace mdseq::obs {

TraceStore::TraceStore(size_t capacity, size_t shards) {
  if (shards == 0) {
    shards = std::max(1u, std::thread::hardware_concurrency());
  }
  shards = std::min(shards, std::max<size_t>(1, capacity));
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool TraceStore::Add(Trace&& trace) {
  const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      shards_.size();
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (per_shard_capacity_ == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool evicted = false;
  while (shard.traces.size() >= per_shard_capacity_) {
    shard.traces.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
    evicted = true;
  }
  shard.traces.push_back(std::move(trace));
  return evicted;
}

std::vector<Trace> TraceStore::Take() {
  std::vector<Trace> all;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (Trace& trace : shard->traces) all.push_back(std::move(trace));
    shard->traces.clear();
  }
  return all;
}

std::vector<Trace> TraceStore::Snapshot(uint64_t query_id) const {
  std::vector<Trace> matches;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const Trace& trace : shard->traces) {
      if (trace.query_id() == query_id) matches.push_back(trace);
    }
  }
  return matches;
}

std::string ChromeTraceJson(const std::vector<Trace>& traces) {
  // Rebase to the earliest span start so the viewer's timeline begins at 0.
  uint64_t epoch_ns = UINT64_MAX;
  for (const Trace& trace : traces) {
    for (const TraceSpan& span : trace.spans()) {
      epoch_ns = std::min(epoch_ns, span.start_ns);
    }
  }
  if (epoch_ns == UINT64_MAX) epoch_ns = 0;

  std::string out = "{\"traceEvents\": [";
  char buffer[160];
  bool first = true;
  for (const Trace& trace : traces) {
    // Named lanes (stitched shard tracks) become thread_name metadata
    // events so the viewer labels each track.
    for (const auto& [lane, name] : trace.lane_names()) {
      if (!first) out.push_back(',');
      first = false;
      out.append("\n  {\"name\": \"thread_name\", \"ph\": \"M\", "
                 "\"pid\": 1, ");
      std::snprintf(buffer, sizeof(buffer), "\"tid\": %" PRIu64, lane);
      out.append(buffer);
      out.append(", \"args\": {\"name\": ").append(JsonQuote(name));
      out.append("}}");
    }
    for (const TraceSpan& span : trace.spans()) {
      if (!first) out.push_back(',');
      first = false;
      const double ts_us =
          static_cast<double>(span.start_ns - epoch_ns) / 1000.0;
      const uint64_t end_ns = std::max(span.end_ns, span.start_ns);
      const double dur_us =
          static_cast<double>(end_ns - span.start_ns) / 1000.0;
      const uint64_t lane =
          span.lane != 0 ? span.lane : trace.tid() % 1000000;
      out.append("\n  {\"name\": ").append(JsonQuote(span.name));
      std::snprintf(buffer, sizeof(buffer),
                    ", \"cat\": \"mdseq\", \"ph\": \"X\", \"ts\": %.3f, "
                    "\"dur\": %.3f, \"pid\": 1, \"tid\": %" PRIu64,
                    ts_us, dur_us, lane);
      out.append(buffer);
      out.append(", \"args\": {");
      std::snprintf(buffer, sizeof(buffer), "\"query_id\": %" PRIu64,
                    trace.query_id());
      out.append(buffer);
      for (const auto& [key, value] : span.args) {
        out.append(", ").append(JsonQuote(key));
        std::snprintf(buffer, sizeof(buffer), ": %" PRIu64, value);
        out.append(buffer);
      }
      out.append("}}");
    }
  }
  out.append("\n]}\n");
  return out;
}

}  // namespace mdseq::obs
