#ifndef MDSEQ_OBS_WORKLOAD_LOG_H_
#define MDSEQ_OBS_WORKLOAD_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mdseq {
namespace obs {

/// CRC-32, reflected polynomial 0xEDB88320 — the same algorithm and
/// parameters as the ingest WAL's `WalCrc32`. Duplicated here because obs
/// is a leaf library (it must not depend on src/ingest); a test asserts the
/// two implementations stay bit-identical.
uint32_t WorkloadCrc32(const void* bytes, size_t count);

/// One framed record as read back by `ScanWorkloadLog`.
struct WorkloadFrame {
  uint8_t type = 0;
  std::vector<uint8_t> payload;
};

/// Result of scanning one log file. `clean_eof` is false when the scan
/// stopped at a torn or corrupt tail (everything before it is still
/// returned — the flight-recorder contract is "keep what survived", never
/// "reject the file").
struct WorkloadScanResult {
  std::vector<WorkloadFrame> frames;
  bool clean_eof = true;
  uint64_t bytes_scanned = 0;
};

/// Appends CRC-framed records to a flat file with byte-budget rotation.
///
/// Frame layout (the WAL framing idiom, without the WAL's page padding):
///
///   u32 crc | u32 length | u8 type | payload[length]
///
/// where `crc` covers `length | type | payload`. Appends are buffered
/// stdio writes flushed per record: the recorder is an observability aid,
/// not a durability layer, so there is no fsync and a crash may lose an
/// unflushed tail — `ScanWorkloadLog` tolerates any torn suffix.
///
/// Rotation: when `max_bytes > 0` and an append would push the current
/// file past the budget, the file is renamed to `<path>.1` (replacing any
/// previous generation) and a fresh `<path>` is started — total footprint
/// stays under ~2x the budget.
///
/// Not thread-safe; callers serialize (the engine's recorder holds a
/// mutex around appends).
class WorkloadLogWriter {
 public:
  struct Options {
    /// Rotate when the current file would exceed this many bytes
    /// (0 = never rotate).
    uint64_t max_bytes = 0;
  };

  WorkloadLogWriter() = default;
  ~WorkloadLogWriter() { Close(); }
  WorkloadLogWriter(const WorkloadLogWriter&) = delete;
  WorkloadLogWriter& operator=(const WorkloadLogWriter&) = delete;

  /// Opens `path` for appending (an existing file continues where it left
  /// off). Returns false when the file cannot be opened.
  bool Open(const std::string& path, const Options& options);
  bool Open(const std::string& path) { return Open(path, Options()); }

  /// Frames and appends one record, rotating first if the byte budget
  /// requires it. Returns false on I/O failure or when not open.
  bool Append(uint8_t type, const void* payload, size_t count);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  /// Framed bytes appended through this writer (excludes pre-existing
  /// content of a continued file).
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t rotations() const { return rotations_; }
  /// Size of the current generation, including pre-existing content.
  uint64_t current_file_bytes() const { return current_bytes_; }

  void Close();

 private:
  bool Rotate();

  std::FILE* file_ = nullptr;
  std::string path_;
  Options options_;
  uint64_t current_bytes_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t rotations_ = 0;
};

/// Scans one log file front to back, validating each frame's CRC. Stops at
/// the first torn or corrupt frame (see `WorkloadScanResult`). A missing
/// file returns zero frames with `clean_eof == true`.
WorkloadScanResult ScanWorkloadLog(const std::string& path);

/// Scans the rotated predecessor `<path>.1` (if present) followed by
/// `<path>`, concatenating frames in write order. `clean_eof` is the AND
/// of the two scans.
WorkloadScanResult ScanWorkloadLogWithRotation(const std::string& path);

}  // namespace obs
}  // namespace mdseq

#endif  // MDSEQ_OBS_WORKLOAD_LOG_H_
