#ifndef MDSEQ_OBS_HTTP_SERVER_H_
#define MDSEQ_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace mdseq::obs::http {

/// One parsed request. Only the pieces the introspection endpoints need:
/// method, path (query string stripped), the decoded query parameters, and
/// the body (POST). Headers beyond Content-Length are parsed and ignored.
struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> params;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Ready-made responses.
HttpResponse TextResponse(int status, std::string body);
HttpResponse JsonResponse(int status, std::string body);

/// A deliberately small, dependency-free HTTP/1.1 server for live
/// introspection and shard RPC: one `poll`-based service thread
/// multiplexing a loopback listener and a bounded set of client
/// connections. Request bodies may arrive over any number of reads (up to
/// `max_request_bytes`), and connections are reused per HTTP/1.1
/// keep-alive semantics (1.1 defaults to keep-alive, `Connection: close`
/// opts out; error responses always close). Designed for the scrape/curl/
/// coordinator workload — not as a general web server.
///
/// Handlers are registered before `Start` under an exact (method, path)
/// key and run on the service thread, so they must be fast and thread-safe
/// with respect to the state they read (the engine exposes atomics and
/// internally locked snapshots). Unknown paths get 404, unknown methods on
/// a known path 405, oversized or malformed requests 400/413/431, and a
/// full connection table answers 503 immediately.
///
/// `Stop` is graceful: the listener closes first, in-flight responses
/// flush, then the thread joins. The destructor calls it.
class HttpServer {
 public:
  struct Options {
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see `port()`).
    uint16_t port = 0;
    /// Concurrent client connections beyond which new accepts answer 503.
    size_t max_connections = 32;
    /// Cap on request head + body; larger requests answer 413.
    size_t max_request_bytes = 16 * 1024;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() : HttpServer(Options{}) {}
  explicit HttpServer(const Options& options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact `method` + `path`. Must be called
  /// before `Start`.
  void Handle(const std::string& method, const std::string& path,
              Handler handler);

  /// Binds, listens, and spawns the service thread. False when the port
  /// cannot be bound (the server is then inert; Start may be retried with
  /// a different port via a fresh instance).
  bool Start();

  /// Graceful shutdown; idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0 to the kernel's pick); 0 before a
  /// successful `Start`.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Requests answered (any status) since `Start`.
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void Serve();
  void AcceptNew();
  /// Reads what is available; returns false when the connection is done
  /// (peer closed or fatal error) and should be dropped.
  bool ReadSome(Connection* conn);
  /// Parses and dispatches as much buffered input as forms a complete
  /// request; returns false when the connection should be dropped.
  bool ProcessInput(Connection* conn);
  /// Returns false when the connection should be dropped.
  bool WriteSome(Connection* conn);
  void Dispatch(Connection* conn);
  void PrepareResponse(Connection* conn, const HttpResponse& response);

  Options options_;
  std::map<std::pair<std::string, std::string>, Handler> handlers_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_{0};
  std::vector<std::unique_ptr<Connection>> connections_;
  std::thread thread_;
};

}  // namespace mdseq::obs::http

#endif  // MDSEQ_OBS_HTTP_SERVER_H_
