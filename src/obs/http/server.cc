#include "obs/http/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>

namespace mdseq::obs::http {

namespace {

constexpr std::string_view kCrlfCrlf = "\r\n\r\n";

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// application/x-www-form-urlencoded decoding: '+' is space, %XX is a byte.
// Malformed escapes are kept literally rather than rejected — introspection
// clients are trusted, and a lenient parse beats a useless 400.
std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size() && HexValue(text[i + 1]) >= 0 &&
               HexValue(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(text[i + 1]) * 16 +
                                      HexValue(text[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void ParseQueryString(std::string_view query,
                      std::map<std::string, std::string>* params) {
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        (*params)[UrlDecode(pair)] = "";
      } else {
        (*params)[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
    start = end + 1;
  }
}

// Parses the request line + headers in `head` (which excludes the blank
// line). Returns false on a malformed request line. Only Content-Length
// and Connection are extracted; other headers are ignored. `keep_alive`
// follows HTTP/1.1 semantics: 1.1 defaults to keep-alive unless the client
// says `Connection: close`, 1.0 defaults to close unless it says
// `Connection: keep-alive`.
bool ParseHead(std::string_view head, HttpRequest* request,
               size_t* content_length, bool* keep_alive) {
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  size_t method_end = request_line.find(' ');
  if (method_end == std::string_view::npos) return false;
  size_t target_end = request_line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos) return false;
  request->method = std::string(request_line.substr(0, method_end));
  std::string_view target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  if (target.empty() || target[0] != '/') return false;
  const bool http11 = request_line.substr(target_end + 1) == "HTTP/1.1";
  *keep_alive = http11;

  size_t question = target.find('?');
  if (question == std::string_view::npos) {
    request->path = std::string(target);
  } else {
    request->path = std::string(target.substr(0, question));
    ParseQueryString(target.substr(question + 1), &request->params);
  }

  *content_length = 0;
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string name(line.substr(0, colon));
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
      if (name == "content-length") {
        size_t length = 0;
        for (char c : value) {
          if (c < '0' || c > '9') break;
          length = length * 10 + static_cast<size_t>(c - '0');
        }
        *content_length = length;
      } else if (name == "connection") {
        std::string token(value);
        for (char& c : token) c = static_cast<char>(std::tolower(c));
        if (token.rfind("close", 0) == 0) *keep_alive = false;
        if (token.rfind("keep-alive", 0) == 0) *keep_alive = true;
      }
    }
    pos = eol + 2;
  }
  return true;
}

}  // namespace

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

struct HttpServer::Connection {
  int fd = -1;
  std::string in;
  std::string out;
  size_t out_pos = 0;
  // Head parsed, waiting for the rest of the body.
  bool have_head = false;
  size_t body_start = 0;
  size_t content_length = 0;
  HttpRequest request;
  // Response queued; once flushed the connection resets (keep-alive) or
  // closes.
  bool responding = false;
  // Whether the connection survives the current response. Error paths
  // (malformed, oversized, over-capacity) force it off — after those the
  // request framing cannot be trusted.
  bool keep_alive = false;

  ~Connection() { CloseFd(&fd); }
};

HttpServer::HttpServer(const Options& options) : options_(options) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& method, const std::string& path,
                        Handler handler) {
  handlers_[{method, path}] = std::move(handler);
}

bool HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    CloseFd(&listen_fd_);
    return false;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }

  if (::pipe(wake_fds_) != 0) {
    CloseFd(&listen_fd_);
    return false;
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(listen_fd_);

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  char byte = 'x';
  // Best-effort wake; the poll loop also times out periodically.
  (void)!::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  connections_.clear();
  CloseFd(&listen_fd_);
  CloseFd(&wake_fds_[0]);
  CloseFd(&wake_fds_[1]);
}

void HttpServer::Serve() {
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : connections_) {
      short events = conn->responding ? POLLOUT : POLLIN;
      fds.push_back({conn->fd, events, 0});
    }

    int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/250);
    if (stop_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;

    // Connections accepted below were not in this round's poll set, so the
    // walk must cover only the first `polled` entries — fds[i + 2] pairs
    // with connections_[i] for exactly those.
    const size_t polled = fds.size() - 2;
    if (fds[1].revents & POLLIN) AcceptNew();

    // Walk connections back to front so erasure is cheap and does not
    // disturb the pollfd pairing.
    for (size_t i = polled; i-- > 0;) {
      pollfd& pfd = fds[i + 2];
      Connection* conn = connections_[i].get();
      bool keep = true;
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Flush whatever response is pending, then drop.
        keep = conn->responding && WriteSome(conn);
        if (!conn->responding) keep = false;
      } else if (pfd.revents & POLLIN) {
        keep = ReadSome(conn);
      } else if (pfd.revents & POLLOUT) {
        keep = WriteSome(conn);
      }
      if (!keep) connections_.erase(connections_.begin() + i);
    }
  }

  // Drain the wake pipe so repeated Start/Stop cycles start clean.
  char scratch[64];
  while (::read(wake_fds_[0], scratch, sizeof(scratch)) > 0) {
  }
}

void HttpServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    if (connections_.size() >= options_.max_connections) {
      // Over capacity: answer 503 on this connection instead of accepting
      // work; the write still goes through the normal flush path so short
      // responses are not torn.
      PrepareResponse(conn.get(), TextResponse(503, "server busy\n"));
      if (WriteSome(conn.get())) connections_.push_back(std::move(conn));
      continue;
    }
    connections_.push_back(std::move(conn));
  }
}

bool HttpServer::ReadSome(Connection* conn) {
  char buffer[4096];
  while (true) {
    ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      if (conn->in.size() > options_.max_request_bytes &&
          !conn->responding) {
        // Overflow before the head terminator is a runaway request line
        // or header block (431); past it, an oversized body (413).
        const bool in_head = !conn->have_head &&
                             conn->in.find(kCrlfCrlf) == std::string::npos;
        conn->keep_alive = false;
        PrepareResponse(conn,
                        in_head ? TextResponse(431, "headers too large\n")
                                : TextResponse(413, "request too large\n"));
        return WriteSome(conn);
      }
      continue;
    }
    if (n == 0) return false;  // peer closed (or idle keep-alive ended)
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  return ProcessInput(conn);
}

bool HttpServer::ProcessInput(Connection* conn) {
  if (conn->responding) return true;  // parse resumes after the flush
  if (!conn->have_head) {
    size_t head_end = conn->in.find(kCrlfCrlf);
    if (head_end == std::string::npos) {
      if (conn->in.size() > options_.max_request_bytes) {
        conn->keep_alive = false;
        PrepareResponse(conn, TextResponse(431, "headers too large\n"));
        return WriteSome(conn);
      }
      return true;  // need more bytes
    }
    conn->request = HttpRequest();
    if (!ParseHead(std::string_view(conn->in).substr(0, head_end),
                   &conn->request, &conn->content_length,
                   &conn->keep_alive)) {
      conn->keep_alive = false;
      PrepareResponse(conn, TextResponse(400, "malformed request\n"));
      return WriteSome(conn);
    }
    conn->have_head = true;
    conn->body_start = head_end + kCrlfCrlf.size();
    if (conn->body_start + conn->content_length >
        options_.max_request_bytes) {
      conn->keep_alive = false;
      PrepareResponse(conn, TextResponse(413, "request too large\n"));
      return WriteSome(conn);
    }
  }

  // The body may arrive over any number of reads; wait until the full
  // Content-Length is buffered.
  if (conn->in.size() < conn->body_start + conn->content_length) {
    return true;  // body incomplete
  }
  conn->request.body =
      conn->in.substr(conn->body_start, conn->content_length);
  // Consume the request bytes now so a keep-alive reset (or pipelined
  // follow-up) starts from a clean buffer.
  conn->in.erase(0, conn->body_start + conn->content_length);
  conn->have_head = false;
  Dispatch(conn);
  return WriteSome(conn);
}

void HttpServer::Dispatch(Connection* conn) {
  auto it = handlers_.find({conn->request.method, conn->request.path});
  if (it == handlers_.end()) {
    // Distinguish wrong-method from unknown-path for a saner curl
    // experience.
    bool path_known = false;
    for (const auto& [key, handler] : handlers_) {
      if (key.second == conn->request.path) {
        path_known = true;
        break;
      }
    }
    PrepareResponse(conn, TextResponse(path_known ? 405 : 404,
                                       path_known ? "method not allowed\n"
                                                  : "not found\n"));
    return;
  }
  HttpResponse response;
  try {
    response = it->second(conn->request);
  } catch (...) {
    response = TextResponse(500, "handler error\n");
  }
  PrepareResponse(conn, response);
}

void HttpServer::PrepareResponse(Connection* conn,
                                 const HttpResponse& response) {
  // Every error response closes, wherever it came from (parse failures,
  // unknown routes, handler-reported errors): after a failed exchange the
  // connection state is not worth trusting, and clients retry on a fresh
  // connection anyway.
  if (response.status >= 400) conn->keep_alive = false;
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: %s\r\n"
                "\r\n",
                response.status, StatusReason(response.status),
                response.content_type.c_str(), response.body.size(),
                conn->keep_alive ? "keep-alive" : "close");
  conn->out.assign(head);
  conn->out.append(response.body);
  conn->out_pos = 0;
  conn->responding = true;
  requests_.fetch_add(1, std::memory_order_relaxed);
}

bool HttpServer::WriteSome(Connection* conn) {
  while (conn->out_pos < conn->out.size()) {
    ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_pos,
                        conn->out.size() - conn->out_pos);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  // Fully flushed. Close unless the exchange negotiated keep-alive; on
  // keep-alive, reset for the next request — which may already be sitting
  // in the input buffer (pipelining), so parsing resumes immediately.
  if (!conn->keep_alive) return false;
  conn->out.clear();
  conn->out_pos = 0;
  conn->responding = false;
  return ProcessInput(conn);
}

}  // namespace mdseq::obs::http
