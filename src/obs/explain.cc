#include "obs/explain.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace mdseq::obs {

namespace {

// "12.3 us" / "4.56 ms" / "1.23 s" — three significant-ish digits, unit
// scaled for readability.
std::string FormatNs(uint64_t ns) {
  char buffer[48];
  const double v = static_cast<double>(ns);
  if (ns < 1000) {
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64 " ns", ns);
  } else if (ns < 1000 * 1000) {
    std::snprintf(buffer, sizeof(buffer), "%.1f us", v / 1e3);
  } else if (ns < uint64_t{1000} * 1000 * 1000) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", v / 1e6);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f s", v / 1e9);
  }
  return buffer;
}

// Fraction of `in` pruned away when `out` survive, as a percentage.
double PrunedPercent(size_t in, size_t out) {
  if (in == 0) return 0.0;
  return 100.0 * static_cast<double>(in - out) / static_cast<double>(in);
}

void AppendLine(std::string* out, const char* label,
                const std::string& body) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "%-24s: %s\n", label, body.c_str());
  out->append(buffer);
}

std::string Printf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

std::string Printf(const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

}  // namespace

std::string RenderExplainReport(const ExplainStats& s) {
  std::string out;
  out.append("EXPLAIN similarity search");
  if (s.interrupted) out.append("  [INTERRUPTED — partial numbers]");
  out.push_back('\n');

  AppendLine(&out, "query",
             Printf("%zu points, dim %zu, eps %.4f (%s)", s.query_points,
                    s.dim, s.epsilon,
                    s.verified ? "filter + verify" : "filter only"));
  AppendLine(&out, "database",
             Printf("%zu sequences (%s)", s.database_sequences,
                    s.disk ? "disk-resident" : "in-memory"));

  AppendLine(&out, "phase 1: partition",
             Printf("%zu query MBRs                      %s", s.query_mbrs,
                    FormatNs(s.partition_ns).c_str()));

  std::string phase2 =
      Printf("%zu -> %zu candidates (%.1f%% pruned), %" PRIu64
             " node accesses",
             s.database_sequences, s.phase2_candidates,
             PrunedPercent(s.database_sequences, s.phase2_candidates),
             s.node_accesses);
  if (s.disk) {
    phase2 += Printf(", %" PRIu64 " page reads + %" PRIu64 " pool hits",
                     s.page_misses, s.page_hits);
  }
  phase2 += Printf("  %s", FormatNs(s.first_pruning_ns).c_str());
  AppendLine(&out, "phase 2: first pruning", phase2);

  if (s.prefilter_abandons > 0 || s.prefilter_ns > 0) {
    AppendLine(&out, "phase 3: prefilter",
               Printf("%zu -> %" PRIu64
                      " candidates, %" PRIu64
                      " probes dropped by centroid bound  %s",
                      s.phase2_candidates, s.prefilter_survivors,
                      s.prefilter_abandons,
                      FormatNs(s.prefilter_ns).c_str()));
  }
  AppendLine(
      &out, "phase 3: second pruning",
      Printf("%zu -> %zu matches (%.1f%% pruned), %" PRIu64
             " Dnorm evaluations  %s",
             s.phase2_candidates, s.phase3_matches,
             PrunedPercent(s.phase2_candidates, s.phase3_matches),
             s.dnorm_evaluations, FormatNs(s.second_pruning_ns).c_str()));
  if (s.probe_abandons > 0) {
    AppendLine(&out, "  probe abandons",
               Printf("%" PRIu64 " probes dismissed before any Dnorm",
                      s.probe_abandons));
  }
  AppendLine(&out, "  interval assembly",
             Printf("%zu intervals covering %zu points  %s",
                    s.solution_intervals, s.solution_points,
                    FormatNs(s.interval_assembly_ns).c_str()));

  if (s.approx_candidates_skipped > 0) {
    const size_t visited =
        s.phase2_candidates > s.approx_candidates_skipped
            ? s.phase2_candidates - s.approx_candidates_skipped
            : 0;
    AppendLine(&out, "approximate",
               Printf("%" PRIu64
                      " candidates skipped by budget (%zu/%zu visited), "
                      "certified eps %.4f",
                      s.approx_candidates_skipped, visited,
                      s.phase2_candidates, s.approx_certified_epsilon));
  }

  if (s.verified) {
    AppendLine(&out, "refine: verification",
               Printf("%zu -> %zu verified matches, %" PRIu64
                      " early abandons, %" PRIu64 " bytes read  %s",
                      s.phase3_matches, s.verified_matches,
                      s.verify_abandons, s.bytes_read,
                      FormatNs(s.verify_ns).c_str()));
  }

  if (s.shards_total > 0) {
    AppendLine(&out, "fan-out",
               Printf("%u shards (%u failed), wait %s, merge %s",
                      s.shards_total, s.shards_failed,
                      FormatNs(s.fanout_wait_ns).c_str(),
                      FormatNs(s.merge_ns).c_str()));
    // Per-shard pruning cascade — the skew view: which shard burned the
    // time, and where in its funnel.
    for (const ExplainStats::ShardRow& row : s.shards) {
      char label[32];
      std::snprintf(label, sizeof(label), "  shard %u", row.shard);
      if (!row.ok) {
        AppendLine(&out, label, "FAILED (no response merged)");
        continue;
      }
      std::string body = Printf(
          "%" PRIu64 " seqs -> %" PRIu64 " cand -> %" PRIu64
          " filt -> %" PRIu64 " match, %" PRIu64 " dnorm, %" PRIu64
          "+%" PRIu64 " abandons, %" PRIu64 " B read",
          row.sequences, row.phase2_candidates, row.filter_matches,
          row.phase3_matches, row.dnorm_evaluations, row.probe_abandons,
          row.verify_abandons, row.bytes_read);
      body += Printf("  %s (rpc %s)%s", FormatNs(row.total_ns).c_str(),
                     FormatNs(row.rpc_ns).c_str(),
                     row.interrupted ? " [interrupted]" : "");
      AppendLine(&out, label, body);
    }
  }

  AppendLine(&out, "total",
             Printf("%s (partition + pruning%s)",
                    FormatNs(s.TotalNs()).c_str(),
                    s.verified ? " + verification" : ""));
  return out;
}

std::string ExplainJson(const ExplainStats& s) {
  std::string out = "{";
  char buffer[96];
  auto add_u64 = [&](const char* key, uint64_t value, bool last = false) {
    std::snprintf(buffer, sizeof(buffer), "\n  \"%s\": %" PRIu64 "%s", key,
                  value, last ? "" : ",");
    out.append(buffer);
  };
  std::snprintf(buffer, sizeof(buffer), "\n  \"epsilon\": %.17g,",
                s.epsilon);
  out.append(buffer);
  out.append("\n  \"verified\": ").append(s.verified ? "true," : "false,");
  out.append("\n  \"disk\": ").append(s.disk ? "true," : "false,");
  out.append("\n  \"interrupted\": ")
      .append(s.interrupted ? "true," : "false,");
  add_u64("query_points", s.query_points);
  add_u64("dim", s.dim);
  add_u64("database_sequences", s.database_sequences);
  add_u64("query_mbrs", s.query_mbrs);
  add_u64("partition_ns", s.partition_ns);
  add_u64("phase2_candidates", s.phase2_candidates);
  add_u64("node_accesses", s.node_accesses);
  add_u64("page_hits", s.page_hits);
  add_u64("page_misses", s.page_misses);
  add_u64("first_pruning_ns", s.first_pruning_ns);
  add_u64("phase3_matches", s.phase3_matches);
  add_u64("dnorm_evaluations", s.dnorm_evaluations);
  add_u64("second_pruning_ns", s.second_pruning_ns);
  add_u64("interval_assembly_ns", s.interval_assembly_ns);
  add_u64("solution_intervals", s.solution_intervals);
  add_u64("solution_points", s.solution_points);
  add_u64("verified_matches", s.verified_matches);
  add_u64("verify_ns", s.verify_ns);
  add_u64("probe_abandons", s.probe_abandons);
  add_u64("verify_abandons", s.verify_abandons);
  add_u64("bytes_read", s.bytes_read);
  add_u64("prefilter_abandons", s.prefilter_abandons);
  add_u64("prefilter_survivors", s.prefilter_survivors);
  add_u64("prefilter_ns", s.prefilter_ns);
  add_u64("approx_candidates_skipped", s.approx_candidates_skipped);
  std::snprintf(buffer, sizeof(buffer),
                "\n  \"approx_certified_epsilon\": %.17g,",
                s.approx_certified_epsilon);
  out.append(buffer);
  out.append("\n  \"approx_exact\": ")
      .append(s.approx_candidates_skipped == 0 ? "true," : "false,");
  add_u64("shards_total", s.shards_total);
  add_u64("shards_failed", s.shards_failed);
  add_u64("fanout_wait_ns", s.fanout_wait_ns);
  add_u64("merge_ns", s.merge_ns);
  out.append("\n  \"shards\": [");
  for (size_t i = 0; i < s.shards.size(); ++i) {
    const ExplainStats::ShardRow& row = s.shards[i];
    if (i > 0) out.push_back(',');
    std::snprintf(buffer, sizeof(buffer),
                  "\n    {\"shard\": %u, \"ok\": %s, \"interrupted\": %s,",
                  row.shard, row.ok ? "true" : "false",
                  row.interrupted ? "true" : "false");
    out.append(buffer);
    auto row_u64 = [&](const char* key, uint64_t value, bool last = false) {
      std::snprintf(buffer, sizeof(buffer), " \"%s\": %" PRIu64 "%s", key,
                    value, last ? "}" : ",");
      out.append(buffer);
    };
    row_u64("rpc_ns", row.rpc_ns);
    row_u64("sequences", row.sequences);
    row_u64("phase2_candidates", row.phase2_candidates);
    row_u64("filter_matches", row.filter_matches);
    row_u64("phase3_matches", row.phase3_matches);
    row_u64("dnorm_evaluations", row.dnorm_evaluations);
    row_u64("probe_abandons", row.probe_abandons);
    row_u64("verify_abandons", row.verify_abandons);
    row_u64("bytes_read", row.bytes_read);
    row_u64("prefilter_abandons", row.prefilter_abandons);
    row_u64("prefilter_survivors", row.prefilter_survivors);
    row_u64("total_ns", row.total_ns, /*last=*/true);
  }
  out.append(s.shards.empty() ? "],": "\n  ],");
  add_u64("total_ns", s.TotalNs(), /*last=*/true);
  out.append("\n}\n");
  return out;
}

}  // namespace mdseq::obs
