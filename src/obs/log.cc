#include "obs/log.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>

#include "obs/json.h"

namespace mdseq::obs {

namespace {

// Per-thread line buffer: a record formats into its thread's buffer and
// hands the finished line to the sink in one call, so concurrent records
// never share formatting state.
std::string* ThreadLineBuffer() {
  thread_local std::string buffer;
  return &buffer;
}

// Wall-clock seconds since the Unix epoch with microsecond resolution —
// log lines are correlated with external systems, so unlike traces they
// use the wall clock.
double UnixNow() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warn") {
    *level = LogLevel::kWarn;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else if (name == "off") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void StderrLogSink::Write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

FileLogSink::FileLogSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {}

FileLogSink::~FileLogSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileLogSink::Write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

void CaptureLogSink::Write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.emplace_back(line);
}

std::vector<std::string> CaptureLogSink::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void CaptureLogSink::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.clear();
}

LogRecord::LogRecord(Logger* logger, LogLevel level, const char* event) {
  if (logger == nullptr || !logger->Enabled(level)) return;
  logger_ = logger;
  line_ = ThreadLineBuffer();
  line_->clear();
  char head[64];
  std::snprintf(head, sizeof(head), "{\"ts\": %.6f, \"level\": \"%s\", ",
                UnixNow(), LogLevelName(level));
  line_->append(head);
  line_->append("\"event\": ").append(JsonQuote(event));
}

LogRecord::~LogRecord() {
  if (logger_ == nullptr) return;
  line_->append("}\n");
  // Hold the sink alive across the write so a concurrent SetSink cannot
  // destroy it mid-line.
  std::shared_ptr<LogSink> sink = logger_->sink();
  if (sink != nullptr) sink->Write(*line_);
}

void LogRecord::Key(const char* key) {
  line_->append(", ").append(JsonQuote(key)).append(": ");
}

LogRecord& LogRecord::Str(const char* key, std::string_view value) {
  if (logger_ == nullptr) return *this;
  Key(key);
  line_->append(JsonQuote(value));
  return *this;
}

LogRecord& LogRecord::U64(const char* key, uint64_t value) {
  if (logger_ == nullptr) return *this;
  Key(key);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  line_->append(buffer);
  return *this;
}

LogRecord& LogRecord::I64(const char* key, int64_t value) {
  if (logger_ == nullptr) return *this;
  Key(key);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  line_->append(buffer);
  return *this;
}

LogRecord& LogRecord::F64(const char* key, double value) {
  if (logger_ == nullptr) return *this;
  Key(key);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  line_->append(buffer);
  return *this;
}

LogRecord& LogRecord::Bool(const char* key, bool value) {
  if (logger_ == nullptr) return *this;
  Key(key);
  line_->append(value ? "true" : "false");
  return *this;
}

Logger::Logger(LogLevel level)
    : level_(static_cast<int>(level)),
      sink_(std::make_shared<StderrLogSink>()) {}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::SetSink(std::shared_ptr<LogSink> sink) {
  if (sink == nullptr) sink = std::make_shared<StderrLogSink>();
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = std::move(sink);
}

std::shared_ptr<LogSink> Logger::sink() const {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  return sink_;
}

}  // namespace mdseq::obs
