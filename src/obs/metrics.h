#ifndef MDSEQ_OBS_METRICS_H_
#define MDSEQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mdseq::obs {

/// Constant label set attached to a metric at registration time, rendered
/// as `{key="value",...}` in the Prometheus exposition. Values are escaped
/// per the text-format grammar; keys must be valid metric-name identifiers.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. `Increment` is a single relaxed atomic add — safe and
/// contention-free from any number of threads; readers see exact totals once
/// the writers quiesce (the registry concurrency test relies on this).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge (queue depth, pool occupancy, ...). `Add` uses a
/// CAS loop rather than `atomic<double>::fetch_add` so pre-C++20-atomics
/// standard libraries stay supported.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram in the Prometheus style: `bounds` are ascending
/// inclusive upper bounds, with an implicit `+Inf` bucket at the end.
/// `Observe` is lock-free on the hot path (one relaxed add into the bucket,
/// one into the count, a CAS loop for the sum).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value) {
    counts_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double seen = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(seen, seen + value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// `Observe` plus an exemplar: remembers (value, trace_id) as the
  /// bucket's most recent annotated sample, rendered OpenMetrics-style
  /// (`# {trace_id="..."} value`) after that bucket line. Last-write-wins
  /// per field under concurrency — a scrape may pair one observation's
  /// value with another's trace id, which is fine for a debugging
  /// breadcrumb and keeps the hot path lock-free.
  void ObserveWithExemplar(double value, uint64_t trace_id) {
    const size_t bucket = BucketOf(value);
    Observe(value);
    Exemplar& slot = exemplars_[bucket];
    slot.value.store(value, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.set.store(true, std::memory_order_release);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` alone (not cumulative); `i == bounds().size()` is
  /// the +Inf bucket.
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// True when bucket `i` holds an exemplar, filling `trace_id`/`value`.
  /// Buckets only touched by plain `Observe` report false, so expositions
  /// without exemplars stay byte-identical to the pre-exemplar format.
  bool bucket_exemplar(size_t i, uint64_t* trace_id, double* value) const {
    const Exemplar& slot = exemplars_[i];
    if (!slot.set.load(std::memory_order_acquire)) return false;
    *trace_id = slot.trace_id.load(std::memory_order_relaxed);
    *value = slot.value.load(std::memory_order_relaxed);
    return true;
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  struct Exemplar {
    std::atomic<bool> set{false};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<double> value{0.0};
  };

  size_t BucketOf(double value) const {
    // Buckets are few (tens); a linear scan beats binary search in practice
    // and keeps the hot path branch-predictable.
    for (size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) return i;
    }
    return bounds_.size();  // +Inf
  }

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::unique_ptr<Exemplar[]> exemplars_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric registry with Prometheus text-format and JSON exposition.
///
/// Registration (`GetCounter`/`GetGauge`/`GetHistogram`) takes a mutex and
/// returns a stable pointer; callers register once at setup and then drive
/// the returned handle directly, so the query hot path never touches the
/// registry lock. Re-registering an existing name returns the same handle
/// (the help text of the first registration wins); registering a name as a
/// different metric type is a programming error and aborts.
///
/// Metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*` (the Prometheus
/// grammar). The exposition writers emit metrics in name order, so output
/// is deterministic — golden tests depend on that.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");

  /// Labeled variants. The labels are constant for the metric's lifetime
  /// (build info, instance identity — not per-request dimensions), and like
  /// help text they follow first-registration-wins: re-registering a name
  /// returns the existing handle regardless of the labels passed.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels);
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels);
  /// `bounds` must be ascending; ignored (first registration wins) when the
  /// histogram already exists.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  /// Prometheus text exposition format 0.0.4: `# HELP` / `# TYPE` headers
  /// followed by the samples; histograms expand into cumulative
  /// `_bucket{le="..."}` series plus `_sum` and `_count`.
  std::string PrometheusText() const;

  /// One JSON object keyed by metric name:
  ///   {"name": {"type": "counter", "value": 12}, ...}
  /// Histograms carry `bounds` (upper bounds), per-bucket `counts` (the
  /// final entry is the +Inf bucket), `sum`, and `count`.
  std::string JsonText() const;

  /// True iff `name` is a valid Prometheus metric name.
  static bool ValidName(const std::string& name);

  /// Escapes a label value per the Prometheus text-format grammar:
  /// backslash, double-quote, and newline become `\\`, `\"`, and `\n`.
  static std::string EscapeLabelValue(std::string_view value);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    /// Prerendered `{k="v",...}` (escaped), or empty for unlabeled metrics.
    std::string label_suffix;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // ordered => deterministic output
};

/// Latency bucket ladder shared by the engine and the CLI: 100us .. 10s in
/// a 1-2.5-5 progression, in seconds.
std::vector<double> DefaultLatencyBoundsSeconds();

/// Registers the conventional `mdseq_build_info` gauge (constant value 1;
/// the interesting data lives in its `version` and `build_type` labels) so
/// every scrape identifies the binary it came from. Idempotent.
void RegisterBuildInfo(MetricsRegistry* registry);

}  // namespace mdseq::obs

#endif  // MDSEQ_OBS_METRICS_H_
