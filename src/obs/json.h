#ifndef MDSEQ_OBS_JSON_H_
#define MDSEQ_OBS_JSON_H_

#include <string>
#include <string_view>

namespace mdseq::obs {

/// Appends `text` to `out` as the body of a JSON string literal (no
/// surrounding quotes): quotes, backslashes, and control characters are
/// escaped per RFC 8259.
void JsonEscape(std::string_view text, std::string* out);

/// Convenience: `"escaped"` with the quotes.
std::string JsonQuote(std::string_view text);

/// Validates that `text` is one well-formed JSON value (object, array,
/// string, number, or literal) with nothing but whitespace after it.
/// A deliberately small recursive-descent checker — enough for tests to
/// assert that exported metrics/trace/EXPLAIN payloads are parseable
/// without an external JSON dependency. On failure, `error` (if non-null)
/// receives a message with the byte offset.
bool JsonValidate(std::string_view text, std::string* error = nullptr);

}  // namespace mdseq::obs

#endif  // MDSEQ_OBS_JSON_H_
