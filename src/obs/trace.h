#ifndef MDSEQ_OBS_TRACE_H_
#define MDSEQ_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mdseq::obs {

/// One timed span of a query trace. Names and argument keys must be string
/// literals (the trace stores the pointers, not copies — a span begin/end
/// is two clock reads and a vector push, nothing else). Names that only
/// exist at runtime (spans stitched in from a shard response) go through
/// `Trace::Intern` first.
struct TraceSpan {
  const char* name = "";
  /// steady_clock nanoseconds since that clock's epoch; absolute so spans
  /// from many traces (and threads) line up on one timeline.
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  /// Nesting depth at begin time (0 = root). Spans nest strictly: a span's
  /// children begin and end within it.
  uint32_t depth = 0;
  /// Display track override. 0 (default) renders in the recording thread's
  /// lane; non-zero spans — stitched-in shard work — get their own track,
  /// named via `Trace::SetLaneName`.
  uint64_t lane = 0;
  /// Small numeric annotations (counters, ids) shown in the trace viewer.
  std::vector<std::pair<const char*, uint64_t>> args;
};

/// A per-query buffer of timestamped spans. One trace is written by exactly
/// one thread (the worker executing the query), so there is no internal
/// locking — cross-thread aggregation happens afterwards through
/// `TraceStore`. Instrumented code receives a `Trace*` that is null when no
/// collector is installed; the `SpanScope` helpers below inline to a single
/// pointer test in that case, which is what makes tracing zero-cost when
/// off.
class Trace {
 public:
  Trace() : tid_(std::hash<std::thread::id>{}(std::this_thread::get_id())) {}

  /// Opens a span; returns its index for `EndSpan`/`AddArg`.
  size_t BeginSpan(const char* name) {
    TraceSpan span;
    span.name = name;
    span.start_ns = NowNs();
    span.depth = static_cast<uint32_t>(open_.size());
    spans_.push_back(std::move(span));
    open_.push_back(spans_.size() - 1);
    return spans_.size() - 1;
  }

  void EndSpan(size_t index) {
    spans_[index].end_ns = NowNs();
    if (!open_.empty() && open_.back() == index) open_.pop_back();
  }

  void AddArg(size_t index, const char* key, uint64_t value) {
    spans_[index].args.emplace_back(key, value);
  }

  /// Appends an already-built span (a shard span stitched in after the
  /// fact) without touching the open-span stack. The caller sets every
  /// field, including timestamps and lane.
  void AddSpan(TraceSpan span) { spans_.push_back(std::move(span)); }

  /// Copies a runtime string into the trace and returns a pointer that
  /// lives as long as the trace (a deque never relocates its elements, even
  /// when the trace itself is moved). For names arriving off the wire;
  /// compile-time names stay plain literals.
  const char* Intern(std::string name) {
    interned_.push_back(std::move(name));
    return interned_.back().c_str();
  }

  /// Names a non-zero span lane ("shard 0", ...) for the trace export.
  void SetLaneName(uint64_t lane, const char* name) {
    for (auto& entry : lane_names_) {
      if (entry.first == lane) {
        entry.second = name;
        return;
      }
    }
    lane_names_.emplace_back(lane, name);
  }

  const std::vector<std::pair<uint64_t, const char*>>& lane_names() const {
    return lane_names_;
  }

  /// Spans in begin order (a pre-order walk of the span tree).
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Hash of the recording thread's id — the `tid` lane in trace viewers.
  uint64_t tid() const { return tid_; }

  /// Engine-assigned query identity, carried into the exported trace.
  void set_query_id(uint64_t id) { query_id_ = id; }
  uint64_t query_id() const { return query_id_; }

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::vector<TraceSpan> spans_;
  std::vector<size_t> open_;
  std::deque<std::string> interned_;
  std::vector<std::pair<uint64_t, const char*>> lane_names_;
  uint64_t tid_;
  uint64_t query_id_ = 0;
};

/// RAII span over an optional trace: no-op (one inlined null test) when
/// `trace` is null. This is the only way instrumented code should open
/// spans — it guarantees begin/end pairing on every exit path.
class SpanScope {
 public:
  SpanScope(Trace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) index_ = trace_->BeginSpan(name);
  }
  ~SpanScope() {
    if (trace_ != nullptr) trace_->EndSpan(index_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attaches a numeric annotation; key must be a string literal.
  void Arg(const char* key, uint64_t value) {
    if (trace_ != nullptr) trace_->AddArg(index_, key, value);
  }

  /// Index of the opened span (meaningless when the trace is null) — lets
  /// callers hand the span out as a parent id for cross-process children.
  size_t index() const { return index_; }

 private:
  Trace* trace_;
  size_t index_ = 0;
};

/// Bounded, sharded sink for completed traces. Each worker thread lands in
/// its own shard (chosen by thread id), so concurrent `Add` calls from
/// different workers never contend on one lock — the engine's "per-worker
/// span buffers". `Take` drains every shard.
///
/// Each shard is a ring: when full it evicts its oldest trace to admit the
/// new one, so under sustained load memory stays bounded while the *recent*
/// traces — the ones a live `/debug/trace` probe wants — survive. Evictions
/// are counted in `dropped()` (exported as `mdseq_traces_dropped_total`).
class TraceStore {
 public:
  /// Keeps at most `capacity` traces in total (per-shard slices); once a
  /// shard fills, each further `Add` evicts that shard's oldest trace and
  /// counts it as dropped. `shards == 0` picks one per hardware thread.
  explicit TraceStore(size_t capacity, size_t shards = 0);

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Stores the trace; true when an older trace was evicted to make room.
  bool Add(Trace&& trace);

  /// Removes and returns every stored trace (order: shard-major, oldest
  /// first within a shard).
  std::vector<Trace> Take();

  /// Copies (without draining) every stored trace whose query id matches —
  /// the live `/debug/trace?id=` path.
  std::vector<Trace> Snapshot(uint64_t query_id) const;

  /// Traces evicted because their shard was full.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::deque<Trace> traces;
  };

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> dropped_{0};
};

/// Renders traces as Chrome `trace_event` JSON (the object form with a
/// `traceEvents` array of complete "X" events) loadable in Perfetto or
/// chrome://tracing. Timestamps are rebased to the earliest span so the
/// viewer opens at t=0; each trace's spans land in the lane of the worker
/// thread that recorded them.
std::string ChromeTraceJson(const std::vector<Trace>& traces);

}  // namespace mdseq::obs

#endif  // MDSEQ_OBS_TRACE_H_
