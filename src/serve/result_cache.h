#ifndef MDSEQ_SERVE_RESULT_CACHE_H_
#define MDSEQ_SERVE_RESULT_CACHE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/search.h"

namespace mdseq {

/// Snapshot-stamped sharded LRU over completed search results.
///
/// Keying: the canonical query signature the workload recorder already
/// computes (`WorkloadQuerySignature` — query bytes + epsilon + verified +
/// search options), so a cache hit is exactly "the recorder would call
/// these submissions the same query".
///
/// Freshness: every entry carries the snapshot epoch that was current
/// *before* its query executed. `Lookup` passes the caller's current
/// epoch; a mismatch means a `LiveDatabase` commit published new data
/// since the entry was computed, and the entry is erased on the spot
/// (counted as an invalidation). Static databases use epoch 0 and never
/// invalidate. TTL (optional) bounds staleness against out-of-band
/// changes; expiry counts as an eviction.
///
/// Concurrency: N independent shards (mutex + LRU list + hash map each)
/// keyed by signature, so concurrent distinct queries rarely contend.
/// Single-flight: `JoinOrLead` collapses concurrent identical misses —
/// one caller leads (computes), the rest block until the leader calls
/// `Complete`, then re-probe. The wait is deadlock-free in the engine
/// because only executing workers ever join, and the leader is by
/// definition already executing.
class ResultCache {
 public:
  struct Options {
    size_t bytes = 0;  // total budget; 0 disables caching entirely
    size_t shards = 8;
    std::chrono::milliseconds ttl{0};  // 0 = no TTL
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;       // LRU byte-budget + TTL expiry
    uint64_t invalidations = 0;   // snapshot-stamp mismatches
    uint64_t singleflight_waits = 0;
    size_t bytes = 0;
    size_t entries = 0;
  };

  explicit ResultCache(const Options& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool enabled() const { return budget_ > 0; }
  size_t capacity_bytes() const { return budget_; }

  /// Returns the cached result when an entry exists, its stamp matches
  /// `stamp`, and it has not outlived the TTL. A stale entry (either
  /// reason) is erased as a side effect.
  std::optional<SearchResult> Lookup(uint64_t key, uint64_t stamp);

  /// Inserts (or replaces) the entry for `key`, then evicts LRU tails
  /// until the shard is back under its byte budget. Results larger than a
  /// whole shard's budget are not cached.
  void Insert(uint64_t key, uint64_t stamp, const SearchResult& result);

  /// Single-flight: returns true if the caller is now the leader for
  /// `key` (it must call `Complete(key)` when done, whether or not it
  /// inserted). Returns false after blocking until the current leader
  /// completed — the caller should then re-`Lookup` and, on a miss, call
  /// `JoinOrLead` again (it will typically lead).
  bool JoinOrLead(uint64_t key);
  void Complete(uint64_t key);

  Stats GetStats() const;

  /// `/debug/cache` body: configuration plus the counters in `Stats`.
  std::string DebugJson() const;

  /// Approximate heap footprint of one cached result (used for the byte
  /// budget). Exposed for tests.
  static size_t EstimateBytes(const SearchResult& result);

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t stamp = 0;
    size_t bytes = 0;
    std::chrono::steady_clock::time_point inserted;
    SearchResult result;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  Shard& ShardOf(uint64_t key) {
    // Signatures are FNV-1a outputs (well mixed); fold the high bits so
    // shard choice and map bucketing use different bit ranges.
    return *shards_[(key ^ (key >> 32)) % shards_.size()];
  }

  void EraseLocked(Shard* shard, std::list<Entry>::iterator it);

  const size_t budget_ = 0;        // total bytes across shards
  const size_t shard_budget_ = 0;  // per-shard slice
  const std::chrono::milliseconds ttl_{0};
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex flight_mutex_;
  std::condition_variable flight_cv_;
  std::unordered_set<uint64_t> in_flight_;
  uint64_t singleflight_waits_ = 0;
};

}  // namespace mdseq

#endif  // MDSEQ_SERVE_RESULT_CACHE_H_
