#ifndef MDSEQ_SERVE_TENANT_QUEUE_H_
#define MDSEQ_SERVE_TENANT_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/admission_queue.h"
#include "util/check.h"

namespace mdseq {

/// One tenant admission class: a name for reporting and a weight for the
/// fair pick. Quotas are derived from the weights — a class with twice the
/// weight gets twice the queue slots and twice the service share.
struct TenantClassSpec {
  std::string name;
  uint32_t weight = 1;
};

/// Point-in-time per-class accounting, for `/debug/tenants` and the
/// serve-bench report.
struct TenantClassStats {
  std::string name;
  uint32_t weight = 0;
  size_t quota = 0;    // queue slots reserved for this class
  size_t depth = 0;    // items currently queued
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;    // victims evicted from this class (kShedOldest)
  uint64_t popped = 0;  // items handed to workers
};

/// A per-tenant-class bounded MPMC queue with weighted fair dequeue — the
/// QoS-aware drop-in for `AdmissionQueue` in front of the worker pool.
///
/// Admission: each class owns a private FIFO whose capacity is its quota
/// (total capacity split by weight, at least one slot each). The overload
/// policy applies *within* the class, so one tenant flooding its queue
/// blocks/sheds only its own work and can never push another tenant's
/// items out.
///
/// Service: `Pop` runs weighted round-robin with per-class credits — a
/// class is served up to `weight` times per replenish cycle, skipping
/// empty classes (work-conserving: an idle class donates its share).
///
/// Thread-safe; mirrors `AdmissionQueue`'s Push/Pop/Close contract so the
/// worker pool can hold either behind one interface.
template <typename T>
class TenantQueue {
 public:
  TenantQueue(size_t capacity, OverloadPolicy policy,
              const std::vector<TenantClassSpec>& classes)
      : policy_(policy) {
    MDSEQ_CHECK(capacity >= 1);
    MDSEQ_CHECK(!classes.empty());
    uint64_t total_weight = 0;
    for (const TenantClassSpec& spec : classes) {
      total_weight += std::max<uint32_t>(spec.weight, 1);
    }
    classes_.reserve(classes.size());
    for (const TenantClassSpec& spec : classes) {
      ClassState state;
      state.name = spec.name;
      state.weight = std::max<uint32_t>(spec.weight, 1);
      state.quota = std::max<size_t>(
          1, capacity * state.weight / static_cast<size_t>(total_weight));
      state.credit = state.weight;
      classes_.push_back(std::move(state));
    }
  }

  TenantQueue(const TenantQueue&) = delete;
  TenantQueue& operator=(const TenantQueue&) = delete;

  size_t num_classes() const { return classes_.size(); }

  /// Offers one item for `tenant` (out-of-range ids fall into class 0, the
  /// default class). Overload is resolved against the tenant's own quota:
  /// kBlock waits for a slot in that class, kReject refuses, kShedOldest
  /// evicts the oldest item *of the same class* into `*shed`.
  AdmitResult Push(T item, uint32_t tenant, std::optional<T>* shed = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    const size_t cls = tenant < classes_.size() ? tenant : 0;
    ClassState& state = classes_[cls];
    ++state.submitted;
    if (policy_ == OverloadPolicy::kBlock) {
      not_full_.wait(lock, [this, &state] {
        return closed_ || state.items.size() < state.quota;
      });
    }
    if (closed_) {
      ++state.rejected;
      return AdmitResult::kRejected;
    }
    if (state.items.size() >= state.quota) {
      switch (policy_) {
        case OverloadPolicy::kBlock:
          MDSEQ_CHECK(false);  // unreachable: the wait above ensured space
          return AdmitResult::kRejected;
        case OverloadPolicy::kReject:
          ++state.rejected;
          return AdmitResult::kRejected;
        case OverloadPolicy::kShedOldest: {
          if (shed != nullptr) shed->emplace(std::move(state.items.front()));
          state.items.pop_front();
          state.items.push_back(std::move(item));
          ++state.shed;
          ++state.admitted;
          lock.unlock();
          not_empty_.notify_one();
          return AdmitResult::kShed;
        }
      }
    }
    state.items.push_back(std::move(item));
    ++state.admitted;
    lock.unlock();
    not_empty_.notify_one();
    return AdmitResult::kAdmitted;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns false only in the latter case. The pick is weighted
  /// round-robin over non-empty classes.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !EmptyLocked(); });
    if (EmptyLocked()) return false;  // closed and drained
    PopPickLocked(out);
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  /// Non-blocking pop; false when empty.
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (EmptyLocked()) return false;
    PopPickLocked(out);
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  /// Closes the queue: subsequent pushes are rejected, blocked producers
  /// and consumers wake up. Items already queued remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t total = 0;
    for (const ClassState& state : classes_) total += state.items.size();
    return total;
  }

  std::vector<TenantClassStats> Stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TenantClassStats> out;
    out.reserve(classes_.size());
    for (const ClassState& state : classes_) {
      TenantClassStats row;
      row.name = state.name;
      row.weight = state.weight;
      row.quota = state.quota;
      row.depth = state.items.size();
      row.submitted = state.submitted;
      row.admitted = state.admitted;
      row.rejected = state.rejected;
      row.shed = state.shed;
      row.popped = state.popped;
      out.push_back(std::move(row));
    }
    return out;
  }

 private:
  struct ClassState {
    std::string name;
    uint32_t weight = 1;
    size_t quota = 1;
    uint32_t credit = 0;  // service credits left this replenish cycle
    std::deque<T> items;
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    uint64_t popped = 0;
  };

  bool EmptyLocked() const {
    for (const ClassState& state : classes_) {
      if (!state.items.empty()) return false;
    }
    return true;
  }

  // Weighted round-robin: serve the first non-empty class with credit
  // starting at the cursor; when no non-empty class has credit left, one
  // replenish starts the next cycle (guaranteed to pick then, since some
  // class is non-empty).
  void PopPickLocked(T* out) {
    const size_t n = classes_.size();
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < n; ++i) {
        const size_t idx = (cursor_ + i) % n;
        ClassState& state = classes_[idx];
        if (state.items.empty() || state.credit == 0) continue;
        *out = std::move(state.items.front());
        state.items.pop_front();
        ++state.popped;
        --state.credit;
        cursor_ = state.credit == 0 ? (idx + 1) % n : idx;
        return;
      }
      for (ClassState& state : classes_) state.credit = state.weight;
    }
    MDSEQ_CHECK(false);  // unreachable: caller ensured a non-empty class
  }

  const OverloadPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<ClassState> classes_;
  size_t cursor_ = 0;
  bool closed_ = false;
};

}  // namespace mdseq

#endif  // MDSEQ_SERVE_TENANT_QUEUE_H_
