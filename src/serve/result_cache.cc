#include "serve/result_cache.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mdseq {

ResultCache::ResultCache(const Options& options)
    : budget_(options.bytes),
      shard_budget_(options.bytes / std::max<size_t>(1, options.shards)),
      ttl_(options.ttl) {
  const size_t count =
      budget_ > 0 ? std::max<size_t>(1, options.shards) : 1;
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ResultCache::EstimateBytes(const SearchResult& result) {
  size_t bytes = sizeof(SearchResult);
  bytes += result.candidates.capacity() * sizeof(size_t);
  bytes += result.matches.capacity() * sizeof(SequenceMatch);
  for (const SequenceMatch& match : result.matches) {
    bytes += match.solution_interval.capacity() * sizeof(Interval);
  }
  bytes += result.shard_breakdown.capacity() * sizeof(ShardQueryStats);
  return bytes;
}

void ResultCache::EraseLocked(Shard* shard,
                              std::list<Entry>::iterator it) {
  shard->bytes -= it->bytes;
  shard->index.erase(it->key);
  shard->lru.erase(it);
}

std::optional<SearchResult> ResultCache::Lookup(uint64_t key,
                                                uint64_t stamp) {
  if (!enabled()) return std::nullopt;
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto found = shard.index.find(key);
  if (found == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  auto it = found->second;
  if (it->stamp != stamp) {
    // A snapshot was published after this entry was computed: the entry
    // describes data that no longer exists. Drop it, count the precise
    // invalidation, and report a miss.
    ++shard.invalidations;
    ++shard.misses;
    EraseLocked(&shard, it);
    return std::nullopt;
  }
  if (ttl_.count() > 0 &&
      std::chrono::steady_clock::now() - it->inserted > ttl_) {
    ++shard.evictions;
    ++shard.misses;
    EraseLocked(&shard, it);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it);
  ++shard.hits;
  return it->result;
}

void ResultCache::Insert(uint64_t key, uint64_t stamp,
                         const SearchResult& result) {
  if (!enabled()) return;
  const size_t bytes = EstimateBytes(result);
  if (bytes > shard_budget_) return;  // would evict everything else
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto found = shard.index.find(key);
  if (found != shard.index.end()) EraseLocked(&shard, found->second);
  Entry entry;
  entry.key = key;
  entry.stamp = stamp;
  entry.bytes = bytes;
  entry.inserted = std::chrono::steady_clock::now();
  entry.result = result;
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.insertions;
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    ++shard.evictions;
    EraseLocked(&shard, std::prev(shard.lru.end()));
  }
}

bool ResultCache::JoinOrLead(uint64_t key) {
  std::unique_lock<std::mutex> lock(flight_mutex_);
  if (in_flight_.insert(key).second) return true;  // leader
  ++singleflight_waits_;
  flight_cv_.wait(lock, [this, key] { return in_flight_.count(key) == 0; });
  return false;
}

void ResultCache::Complete(uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(flight_mutex_);
    in_flight_.erase(key);
  }
  flight_cv_.notify_all();
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.invalidations += shard->invalidations;
    out.bytes += shard->bytes;
    out.entries += shard->lru.size();
  }
  {
    std::lock_guard<std::mutex> lock(flight_mutex_);
    out.singleflight_waits = singleflight_waits_;
  }
  return out;
}

std::string ResultCache::DebugJson() const {
  const Stats s = GetStats();
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"enabled\": %s,\n"
      "  \"capacity_bytes\": %zu,\n"
      "  \"shards\": %zu,\n"
      "  \"ttl_ms\": %" PRId64 ",\n"
      "  \"bytes\": %zu,\n"
      "  \"entries\": %zu,\n"
      "  \"hits\": %" PRIu64 ",\n"
      "  \"misses\": %" PRIu64 ",\n"
      "  \"insertions\": %" PRIu64 ",\n"
      "  \"evictions\": %" PRIu64 ",\n"
      "  \"invalidations\": %" PRIu64 ",\n"
      "  \"singleflight_waits\": %" PRIu64 "\n"
      "}\n",
      enabled() ? "true" : "false", budget_, shards_.size(),
      static_cast<int64_t>(ttl_.count()), s.bytes, s.entries, s.hits,
      s.misses, s.insertions, s.evictions, s.invalidations,
      s.singleflight_waits);
  return buffer;
}

}  // namespace mdseq
