#ifndef MDSEQ_IO_SERIALIZATION_H_
#define MDSEQ_IO_SERIALIZATION_H_

#include <optional>
#include <string>
#include <vector>

#include "geom/sequence.h"

namespace mdseq {

/// Persistence for sequence corpora, so a database can be built once from
/// generated or imported data and reloaded by tools, examples, and
/// benchmark harnesses.
///
/// Binary format (little-endian, host doubles):
///   magic "MDSQ" | u32 version | u64 count
///   per sequence: u64 dim | u64 size | size*dim doubles (row-major)
///
/// All functions report failure through their return value (no
/// exceptions); on failure the file state is unspecified but no partial
/// data is ever returned.

/// Writes a corpus; returns false on I/O failure.
bool WriteSequences(const std::string& path,
                    const std::vector<Sequence>& sequences);

/// Reads a corpus written by `WriteSequences`; nullopt on I/O error,
/// malformed header, or truncated payload.
std::optional<std::vector<Sequence>> ReadSequences(const std::string& path);

/// Writes one sequence as CSV with a `d0,d1,...` header row, one point per
/// line.
bool WriteSequenceCsv(const std::string& path, SequenceView sequence);

/// Reads a CSV of numeric rows (an optional non-numeric header row is
/// skipped) into a sequence; all rows must have the same column count.
/// Returns nullopt on I/O error, ragged rows, or non-numeric data.
std::optional<Sequence> ReadSequenceCsv(const std::string& path);

}  // namespace mdseq

#endif  // MDSEQ_IO_SERIALIZATION_H_
