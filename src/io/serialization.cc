#include "io/serialization.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace mdseq {

namespace {

constexpr char kMagic[4] = {'M', 'D', 'S', 'Q'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WriteRaw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadRaw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace

bool WriteSequences(const std::string& path,
                    const std::vector<Sequence>& sequences) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  WriteRaw(out, kVersion);
  WriteRaw(out, static_cast<uint64_t>(sequences.size()));
  for (const Sequence& seq : sequences) {
    WriteRaw(out, static_cast<uint64_t>(seq.dim()));
    WriteRaw(out, static_cast<uint64_t>(seq.size()));
    const std::vector<double>& data = seq.data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(double)));
  }
  return static_cast<bool>(out);
}

std::optional<std::vector<Sequence>> ReadSequences(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadRaw(in, &version) || version != kVersion) return std::nullopt;
  if (!ReadRaw(in, &count)) return std::nullopt;

  std::vector<Sequence> sequences;
  sequences.reserve(count);
  for (uint64_t s = 0; s < count; ++s) {
    uint64_t dim = 0;
    uint64_t size = 0;
    if (!ReadRaw(in, &dim) || !ReadRaw(in, &size)) return std::nullopt;
    if (dim == 0 || dim > 1u << 20 || size > 1u << 30) return std::nullopt;
    Sequence seq(static_cast<size_t>(dim));
    std::vector<double> point(dim);
    for (uint64_t i = 0; i < size; ++i) {
      in.read(reinterpret_cast<char*>(point.data()),
              static_cast<std::streamsize>(dim * sizeof(double)));
      if (!in) return std::nullopt;  // truncated payload
      seq.Append(point);
    }
    sequences.push_back(std::move(seq));
  }
  return sequences;
}

bool WriteSequenceCsv(const std::string& path, SequenceView sequence) {
  std::vector<std::string> header;
  header.reserve(sequence.dim());
  for (size_t k = 0; k < sequence.dim(); ++k) {
    header.push_back("d" + std::to_string(k));
  }
  CsvWriter csv(std::move(header));
  for (size_t i = 0; i < sequence.size(); ++i) {
    std::vector<double> row(sequence[i].begin(), sequence[i].end());
    csv.AddRow(row);
  }
  return csv.WriteFile(path);
}

std::optional<Sequence> ReadSequenceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::optional<Sequence> sequence;
  std::string line;
  bool first_line = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> values;
    std::stringstream row(line);
    std::string cell;
    bool numeric = true;
    while (std::getline(row, cell, ',')) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || (end != nullptr && *end != '\0' &&
                                  *end != '\r')) {
        numeric = false;
        break;
      }
      values.push_back(v);
    }
    if (!numeric) {
      if (first_line) {
        first_line = false;  // header row
        continue;
      }
      return std::nullopt;
    }
    first_line = false;
    if (values.empty()) return std::nullopt;
    if (!sequence.has_value()) {
      sequence.emplace(values.size());
    } else if (values.size() != sequence->dim()) {
      return std::nullopt;  // ragged rows
    }
    sequence->Append(values);
  }
  if (!sequence.has_value()) return std::nullopt;  // empty file
  return sequence;
}

}  // namespace mdseq
