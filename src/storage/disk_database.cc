#include "storage/disk_database.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "core/distance.h"
#include "obs/trace.h"
#include "storage/disk_format.h"
#include "storage/page_stream.h"
#include "util/check.h"

namespace mdseq {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t ElapsedNs(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now() - start)
          .count());
}

// The master page layout and the partition region byte format are shared
// with the live ingest path; see storage/disk_format.h.
using diskfmt::AppendPartition;
using diskfmt::MasterLayout;
using diskfmt::ReadPartition;

}  // namespace

bool DiskDatabase::Save(const SequenceDatabase& database,
                        const std::string& path) {
  PageFile file;
  if (!file.Create(path)) return false;
  const PageId master_page = file.Allocate();
  if (master_page == kInvalidPageId) return false;

  // Sequence store region.
  std::vector<Sequence> corpus;
  corpus.reserve(database.num_sequences());
  for (size_t id = 0; id < database.num_sequences(); ++id) {
    corpus.push_back(database.sequence(id));
  }
  const PageId store_meta = SequenceStore::WriteInto(corpus, &file);
  if (store_meta == kInvalidPageId) return false;

  // Partition region.
  PageStreamWriter partitions(&file);
  for (size_t id = 0; id < database.num_sequences(); ++id) {
    if (!AppendPartition(&partitions, database.partition(id),
                         database.dim())) {
      return false;
    }
  }
  if (!partitions.Finish()) return false;

  // Index region: every subsequence MBR, same payloads as the in-memory
  // index.
  std::vector<IndexEntry> entries;
  for (size_t id = 0; id < database.num_sequences(); ++id) {
    const Partition& partition = database.partition(id);
    for (size_t ordinal = 0; ordinal < partition.size(); ++ordinal) {
      entries.push_back(
          IndexEntry{partition[ordinal].mbr,
                     SequenceDatabase::PackEntry(id, ordinal)});
    }
  }
  const PageId index_root =
      PagedRTree::BuildInto(database.dim(), std::move(entries), &file);
  if (index_root == kInvalidPageId) return false;

  // Master meta page.
  Page master;
  std::memset(master.data, 0, kPageSize);
  MasterLayout layout;
  layout.dim = database.dim();
  layout.sequence_count = database.num_sequences();
  layout.store_meta_page = store_meta;
  layout.index_root_page = index_root;
  layout.partitions_first_page = partitions.first_page();
  layout.partitions_page_count = partitions.page_count();
  layout.side_growth = database.options().partitioning.side_growth;
  layout.max_points = database.options().partitioning.max_points;
  layout.cost_model =
      static_cast<uint8_t>(database.options().partitioning.cost_model);
  std::memcpy(master.data, &layout, sizeof(layout));
  if (!file.Write(master_page, master)) return false;
  return file.set_root_hint(master_page);
}

DiskDatabase::DiskDatabase(const std::string& path, size_t pool_pages,
                           const SearchOptions& options)
    : options_(options) {
  if (!file_.Open(path)) return;
  pool_ = std::make_unique<BufferPool>(&file_, pool_pages);

  const PageId master_page = file_.root_hint();
  if (master_page == kInvalidPageId) return;
  MasterLayout layout;
  {
    PageHandle master = pool_->Fetch(master_page);
    if (!master.valid()) return;
    std::memcpy(&layout, master.page().data, sizeof(layout));
  }
  dim_ = static_cast<size_t>(layout.dim);
  if (dim_ == 0) return;
  partitioning_.side_growth = layout.side_growth;
  partitioning_.max_points = static_cast<size_t>(layout.max_points);
  partitioning_.cost_model =
      static_cast<PartitioningOptions::CostModel>(layout.cost_model);

  store_ = std::make_unique<SequenceStore>(pool_.get(),
                                           layout.store_meta_page);
  if (!store_->valid() || store_->size() != layout.sequence_count) return;

  tree_ = std::make_unique<PagedRTree>(dim_, pool_.get(),
                                       layout.index_root_page);
  if (!tree_->valid()) return;

  // Partition catalog: read once, kept resident.
  partitions_.resize(layout.sequence_count);
  lengths_.resize(layout.sequence_count);
  PageStreamReader reader(pool_.get(), layout.partitions_first_page, 0);
  for (uint64_t id = 0; id < layout.sequence_count; ++id) {
    if (!ReadPartition(&reader, dim_, &partitions_[id])) return;
    lengths_[id] =
        partitions_[id].empty() ? 0 : partitions_[id].back().end;
  }
  valid_ = true;
}

SearchResult DiskDatabase::Search(SequenceView query, double epsilon) const {
  return Search(query, epsilon, SearchControl());
}

SearchResult DiskDatabase::Search(SequenceView query, double epsilon,
                                  const SearchControl& control) const {
  MDSEQ_CHECK(valid_);
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.dim() == dim_);
  MDSEQ_CHECK(epsilon >= 0.0);

  SearchResult result;

  // Phase 1: query partitioning with the stored options.
  control.SetPhase(SearchPhase::kPartition);
  Partition query_partition;
  {
    obs::SpanScope span(control.trace, "partition");
    const auto start = SteadyClock::now();
    query_partition = PartitionSequence(query, partitioning_);
    result.stats.partition_ns += ElapsedNs(start);
    result.stats.query_mbrs = query_partition.size();
    span.Arg("query_mbrs", query_partition.size());
  }

  // Phase 2 against the paged index: one batched descent for all query
  // MBRs, so each node page is fetched once per query instead of once per
  // query MBR. Node accesses and pool misses are counted per call (pages
  // this query visited / read), not as a pool counter delta, so the
  // numbers are deterministic and exact when other threads share the pool.
  control.SetPhase(SearchPhase::kFirstPruning);
  std::vector<double> candidate_min_dist2;
  {
    obs::SpanScope span(control.trace, "first_pruning");
    const auto start = SteadyClock::now();
    std::vector<Mbr> queries;
    queries.reserve(query_partition.size());
    for (const SequenceMbr& piece : query_partition) {
      queries.push_back(piece.mbr);
    }
    std::vector<std::vector<SpatialIndex::BatchHit>> hits;
    {
      obs::SpanScope search_span(control.trace, "range_search");
      tree_->RangeSearchBatch(queries, epsilon, &hits,
                              &result.stats.node_accesses,
                              &result.stats.page_misses);
      search_span.Arg("probes", queries.size());
      search_span.Arg("node_visits", result.stats.node_accesses);
      search_span.Arg("pool_misses", result.stats.page_misses);
    }
    result.stats.page_hits =
        result.stats.node_accesses - result.stats.page_misses;
    // Deduplicate ids, tracking each candidate's minimum squared Dmbr —
    // the Phase-3 processing order key.
    std::vector<std::pair<size_t, double>> scored;
    for (const auto& per_query : hits) {
      for (const SpatialIndex::BatchHit& hit : per_query) {
        scored.emplace_back(SequenceDatabase::UnpackSequenceId(hit.value),
                            hit.dist2);
      }
    }
    std::sort(scored.begin(), scored.end());
    for (const auto& [id, dist2] : scored) {
      if (!result.candidates.empty() && result.candidates.back() == id) {
        candidate_min_dist2.back() =
            std::min(candidate_min_dist2.back(), dist2);
      } else {
        result.candidates.push_back(id);
        candidate_min_dist2.push_back(dist2);
      }
    }
    result.stats.phase2_candidates = result.candidates.size();
    if (control.progress != nullptr) {
      control.progress->phase2_candidates.store(
          result.candidates.size(), std::memory_order_relaxed);
    }
    result.stats.first_pruning_ns += ElapsedNs(start);
    span.Arg("node_accesses", result.stats.node_accesses);
    span.Arg("pool_hits", result.stats.page_hits);
    span.Arg("pool_misses", result.stats.page_misses);
    span.Arg("candidates", result.candidates.size());
  }

  // Phase 3 on the resident partition catalog, most promising candidates
  // (smallest min Dmbr) first so interrupted queries spend their budget
  // well.
  {
    obs::SpanScope span(control.trace, "second_pruning");
    control.SetPhase(SearchPhase::kSecondPruning);
    const auto start = SteadyClock::now();
    std::vector<size_t> order(result.candidates.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (candidate_min_dist2[a] != candidate_min_dist2[b]) {
        return candidate_min_dist2[a] < candidate_min_dist2[b];
      }
      return result.candidates[a] < result.candidates[b];
    });
    for (size_t pos = 0; pos < order.size(); ++pos) {
      const size_t slot = order[pos];
      const size_t id = result.candidates[slot];
      if (options_.max_candidates > 0 &&
          pos == options_.max_candidates) {
        // Approximate-tier budget cut (same argument as the in-memory
        // path): the ascending min-Dmbr order certifies everything below
        // the first skipped candidate's bound.
        result.stats.approx_candidates_skipped = order.size() - pos;
        result.stats.approx_certified_epsilon =
            std::min(epsilon, std::sqrt(candidate_min_dist2[slot]));
        break;
      }
      if (control.ShouldStop()) {
        result.interrupted = true;
        break;
      }
      obs::SpanScope candidate_span(control.trace, "candidate");
      candidate_span.Arg("sequence_id", id);
      const size_t evals_before = result.stats.dnorm_evaluations;
      SequenceMatch match;
      match.sequence_id = id;
      const bool qualified = internal::EvaluatePhase3(
          query_partition, query.size(), partitions_[id], lengths_[id],
          epsilon, options_, &match, &result.stats, control.trace);
      candidate_span.Arg("dnorm_evaluations",
                         result.stats.dnorm_evaluations - evals_before);
      candidate_span.Arg("qualified", qualified ? 1 : 0);
      if (qualified) {
        result.matches.push_back(std::move(match));
        if (control.progress != nullptr) {
          control.progress->phase3_matches.store(
              result.matches.size(), std::memory_order_relaxed);
        }
      }
    }
    std::sort(result.matches.begin(), result.matches.end(),
              [](const SequenceMatch& a, const SequenceMatch& b) {
                return a.sequence_id < b.sequence_id;
              });
    result.stats.second_pruning_ns += ElapsedNs(start);
    span.Arg("matches", result.matches.size());
  }
  result.stats.phase3_matches = result.matches.size();
  result.stats.filter_matches = result.matches.size();
  if (result.stats.approx_candidates_skipped == 0) {
    result.stats.approx_certified_epsilon = epsilon;
  }
  return result;
}

SearchResult DiskDatabase::SearchVerified(SequenceView query,
                                          double epsilon) const {
  return SearchVerified(query, epsilon, SearchControl());
}

SearchResult DiskDatabase::SearchVerified(SequenceView query, double epsilon,
                                          const SearchControl& control) const {
  SearchResult result = Search(query, epsilon, control);
  control.SetPhase(SearchPhase::kVerify);
  obs::SpanScope span(control.trace, "verify");
  const auto start = SteadyClock::now();
  std::vector<SequenceMatch> verified;
  verified.reserve(result.matches.size());
  for (SequenceMatch& match : result.matches) {
    if (control.ShouldStop()) {
      result.interrupted = true;
      break;
    }
    obs::SpanScope candidate_span(control.trace, "verify_candidate");
    candidate_span.Arg("sequence_id", match.sequence_id);
    const auto sequence = store_->Read(match.sequence_id);
    if (!sequence.has_value()) continue;  // I/O failure: drop conservatively
    result.stats.bytes_read +=
        sequence->size() * sequence->dim() * sizeof(double);
    const double exact = SequenceDistance(query, sequence->View());
    if (exact > epsilon) {
      ++result.stats.verify_abandons;
      continue;
    }
    match.exact_distance = exact;
    match.solution_interval =
        ExactSolutionInterval(query, sequence->View(), epsilon);
    verified.push_back(std::move(match));
  }
  result.matches = std::move(verified);
  result.stats.phase3_matches = result.matches.size();
  result.stats.verify_ns += ElapsedNs(start);
  span.Arg("verified_matches", result.matches.size());
  return result;
}

std::optional<Sequence> DiskDatabase::ReadSequence(size_t id) const {
  MDSEQ_CHECK(valid_);
  MDSEQ_CHECK(id < store_->size());
  return store_->Read(id);
}

}  // namespace mdseq
