#include "storage/sequence_store.h"

#include <cstring>

#include "storage/page_stream.h"
#include "util/check.h"

namespace mdseq {

namespace {

// Meta page layout.
struct MetaLayout {
  uint64_t count;
  uint32_t data_first_page;
  uint32_t data_page_count;
  uint32_t dir_first_page;
  uint32_t dir_page_count;
};
static_assert(sizeof(MetaLayout) <= kPageSize);

}  // namespace

PageId SequenceStore::WriteInto(const std::vector<Sequence>& corpus,
                                PageFile* file) {
  MDSEQ_CHECK(file != nullptr && file->is_open());

  const PageId meta_page = file->Allocate();
  if (meta_page == kInvalidPageId) return kInvalidPageId;

  // Data region: records back to back.
  std::vector<DirectoryEntry> directory;
  directory.reserve(corpus.size());
  PageStreamWriter data(file);
  for (const Sequence& seq : corpus) {
    directory.push_back(DirectoryEntry{data.total_bytes(),
                                       static_cast<uint64_t>(seq.dim()),
                                       static_cast<uint64_t>(seq.size())});
    if (!data.Append(seq.data().data(),
                     seq.data().size() * sizeof(double))) {
      return kInvalidPageId;
    }
  }
  if (!data.Finish()) return kInvalidPageId;

  // Directory region.
  PageStreamWriter dir(file);
  if (!directory.empty() &&
      !dir.Append(directory.data(),
                  directory.size() * sizeof(DirectoryEntry))) {
    return kInvalidPageId;
  }
  if (!dir.Finish()) return kInvalidPageId;

  // Meta page.
  Page meta;
  std::memset(meta.data, 0, kPageSize);
  MetaLayout layout;
  layout.count = corpus.size();
  layout.data_first_page = data.first_page();
  layout.data_page_count = data.page_count();
  layout.dir_first_page = dir.first_page();
  layout.dir_page_count = dir.page_count();
  std::memcpy(meta.data, &layout, sizeof(layout));
  if (!file->Write(meta_page, meta)) return kInvalidPageId;
  return meta_page;
}

bool SequenceStore::Write(const std::vector<Sequence>& corpus,
                          PageFile* file) {
  const PageId meta_page = WriteInto(corpus, file);
  return meta_page != kInvalidPageId && file->set_root_hint(meta_page);
}

SequenceStore::SequenceStore(BufferPool* pool, PageId meta_page)
    : pool_(pool) {
  MDSEQ_CHECK(pool != nullptr);
  if (meta_page == kInvalidPageId) return;
  PageHandle meta = pool_->Fetch(meta_page);
  if (!meta.valid()) return;
  MetaLayout layout;
  std::memcpy(&layout, meta.page().data, sizeof(layout));
  meta.Release();

  data_first_page_ = layout.data_first_page;
  directory_.resize(layout.count);
  if (layout.count > 0) {
    PageStreamReader reader(pool_, layout.dir_first_page, 0);
    if (!reader.Read(directory_.data(),
                     directory_.size() * sizeof(DirectoryEntry))) {
      directory_.clear();
      return;
    }
  }
  valid_ = true;
}

std::optional<Sequence> SequenceStore::Read(size_t id) const {
  MDSEQ_CHECK(valid_);
  MDSEQ_CHECK(id < directory_.size());
  const DirectoryEntry& entry = directory_[id];
  Sequence sequence(static_cast<size_t>(entry.dim));
  std::vector<double> data(entry.dim * entry.length);
  PageStreamReader reader(pool_, data_first_page_, entry.offset);
  if (!data.empty() &&
      !reader.Read(data.data(), data.size() * sizeof(double))) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < entry.length; ++i) {
    sequence.Append(PointView(data.data() + i * entry.dim,
                              static_cast<size_t>(entry.dim)));
  }
  return sequence;
}

}  // namespace mdseq
