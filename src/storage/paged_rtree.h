#ifndef MDSEQ_STORAGE_PAGED_RTREE_H_
#define MDSEQ_STORAGE_PAGED_RTREE_H_

#include <cstdint>
#include <vector>

#include "index/spatial_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace mdseq {

/// A disk-resident, bulk-loaded R-tree: nodes are 4 KiB pages in a
/// `PageFile`, fetched through a `BufferPool` during queries. This is the
/// storage model the paper's cost function assumes ("the average number of
/// disk accesses"), so the buffer pool's miss counter measures the real
/// disk accesses an index traversal costs.
///
/// The tree is normally built once with Sort-Tile-Recursive packing (the
/// paper's index is constructed in a pre-processing step and then queried);
/// incremental `Insert` (Guttman-style, quadratic split) is supported for
/// growing an index in place. Pages modified by inserts are written back by
/// the buffer pool.
///
/// Page layout: `u16 level | u16 count | u32 dim`, then `count` entries of
/// `2*dim` doubles (low, high) + `u64` payload (leaf: value; internal:
/// child PageId).
class PagedRTree {
 public:
  /// Builds the tree into `file` (which must be open and fresh) and
  /// records the root in the file header. Returns false on I/O failure.
  /// `entries` is consumed (reordered) during tiling.
  static bool Build(size_t dim, std::vector<IndexEntry> entries,
                    PageFile* file);

  /// As `Build`, but returns the root page instead of claiming the file
  /// header — for files shared with other structures (see DiskDatabase).
  /// Returns kInvalidPageId on failure.
  static PageId BuildInto(size_t dim, std::vector<IndexEntry> entries,
                          PageFile* file);

  /// Attaches to a previously built tree: `root` is the page id stored in
  /// the file header by `Build` (`file.root_hint()`). The pool (and its
  /// file) must outlive the tree; `dim` must match the build.
  PagedRTree(size_t dim, BufferPool* pool, PageId root);

  /// Convenience: attaches using the file's root hint.
  PagedRTree(size_t dim, BufferPool* pool, const PageFile& file)
      : PagedRTree(dim, pool, file.root_hint()) {}

  /// Entries per node page for this dimensionality.
  static size_t PageCapacity(size_t dim);

  /// Creates an empty tree (a single empty leaf page) in `file` and
  /// records the root in the file header; grow it with `Insert`.
  static bool CreateEmpty(size_t dim, PageFile* file);

  /// Appends payloads of entries within Euclidean distance `epsilon` of
  /// `query` (same semantics as `SpatialIndex::RangeSearch`). Returns
  /// false on I/O failure (results are then incomplete). When
  /// `pages_visited` is non-null it is incremented once per node page this
  /// call touched (hit or miss) — exact per-query accounting even when
  /// other threads share the pool. `pool_misses` (optional) is likewise
  /// incremented once per visited page that had to be read from the file,
  /// so `*pages_visited - *pool_misses` is this call's buffer-pool hits.
  bool RangeSearch(const Mbr& query, double epsilon,
                   std::vector<uint64_t>* out,
                   uint64_t* pages_visited = nullptr,
                   uint64_t* pool_misses = nullptr) const;

  /// Multi-probe range search with the same per-query hit sets as one
  /// `RangeSearch` per query (see `SpatialIndex::RangeSearchBatch` for the
  /// contract, including the per-hit squared distances): a single descent
  /// fetches every node page once for the whole batch, so page visits and
  /// buffer-pool misses shrink by roughly the probe count for overlapping
  /// probes. Returns false on I/O failure (results are then incomplete).
  bool RangeSearchBatch(
      const std::vector<Mbr>& queries, double epsilon,
      std::vector<std::vector<SpatialIndex::BatchHit>>* out,
      uint64_t* pages_visited = nullptr,
      uint64_t* pool_misses = nullptr) const;

  /// Inserts one entry (Guttman ChooseLeaf + quadratic split). Dirty pages
  /// stay in the pool until eviction or `BufferPool::Flush`. Returns false
  /// on I/O failure. The file's root hint is refreshed when the root
  /// splits.
  bool Insert(const Mbr& mbr, uint64_t value, PageFile* file);

  /// Copy-on-write insert: like `Insert`, but no page reachable from the
  /// pre-call root is modified — every node on the insertion path is
  /// rewritten to a fresh page (drawn from `*free_pages` when non-empty,
  /// else allocated at the file end) and the superseded page ids are
  /// appended to `*retired` (may be null). Readers attached to the old
  /// root keep seeing a consistent tree. The new root is visible via
  /// `root()` only; the file header is NOT touched — the caller persists
  /// the root at its own commit point (see LiveDatabase::Checkpoint).
  /// Returns false on I/O failure.
  bool InsertCow(const Mbr& mbr, uint64_t value, PageFile* file,
                 std::vector<PageId>* retired,
                 std::vector<PageId>* free_pages);

  /// Current root page (changes when the root splits).
  PageId root() const { return root_; }

  /// Verifies containment/level/count invariants by traversal; prints the
  /// violation to stderr and returns false when corrupt. Used by tests.
  bool CheckInvariants() const;

  /// Total stored (leaf) entries, computed on first call by scanning.
  size_t CountEntries() const;

  /// Height in levels (1 = root is a leaf).
  size_t height() const { return height_; }
  bool valid() const { return root_ != kInvalidPageId; }

 private:
  size_t dim_;
  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  size_t height_ = 0;
};

}  // namespace mdseq

#endif  // MDSEQ_STORAGE_PAGED_RTREE_H_
