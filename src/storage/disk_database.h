#ifndef MDSEQ_STORAGE_DISK_DATABASE_H_
#define MDSEQ_STORAGE_DISK_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/search.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/paged_rtree.h"
#include "storage/sequence_store.h"

namespace mdseq {

/// A disk-resident similarity-search database: one page file holding the
/// raw sequences (SequenceStore), the subsequence MBR index (PagedRTree),
/// the per-sequence partitions, and the partitioning options. Queries run
/// the same three-phase algorithm as `SimilaritySearch` but every index
/// node and every sequence byte is fetched through an LRU buffer pool — so
/// query cost is observable in page misses, the unit the paper's cost model
/// (and its 1999 hardware) was about.
///
/// Partitions and their MBRs are small metadata (a few bytes per
/// subsequence) and are cached in memory at open, mirroring real systems
/// that keep catalogs resident while data and index pages are demand-paged.
class DiskDatabase {
 public:
  /// Serializes an in-memory database to `path`. Returns false on I/O
  /// failure.
  static bool Save(const SequenceDatabase& database, const std::string& path);

  /// Opens a saved database with a pool of `pool_pages` frames. Check
  /// `valid()` before use.
  DiskDatabase(const std::string& path, size_t pool_pages,
               const SearchOptions& options = SearchOptions());

  bool valid() const { return valid_; }
  size_t dim() const { return dim_; }
  size_t num_sequences() const { return partitions_.size(); }

  /// The paper's filter phases against the paged index (no sequence
  /// reads). Same semantics as `SimilaritySearch::Search`.
  /// `stats.node_accesses` counts the index pages this query visited
  /// (through the pool), so it is exact even with concurrent readers.
  ///
  /// The query path is const; any number of threads may search one open
  /// DiskDatabase concurrently (page fetches serialize on the pool latch).
  /// The `control` overloads poll for cancellation/deadline between
  /// phases; see `SearchControl`.
  SearchResult Search(SequenceView query, double epsilon) const;
  SearchResult Search(SequenceView query, double epsilon,
                      const SearchControl& control) const;

  /// Filter plus refinement: matches are verified against the stored
  /// sequences, read through the buffer pool. Same semantics as
  /// `SimilaritySearch::SearchVerified`.
  SearchResult SearchVerified(SequenceView query, double epsilon) const;
  SearchResult SearchVerified(SequenceView query, double epsilon,
                              const SearchControl& control) const;

  /// Reads one sequence from disk (paged).
  std::optional<Sequence> ReadSequence(size_t id) const;

  /// Buffer pool statistics (shared by index and data accesses).
  const BufferPool& pool() const { return *pool_; }
  BufferPool* mutable_pool() { return pool_.get(); }

  /// The underlying page file; its lifetime I/O counters feed the
  /// `mdseq_page_file_*` gauges.
  const PageFile& file() const { return file_; }

 private:
  bool valid_ = false;
  size_t dim_ = 0;
  PartitioningOptions partitioning_;
  SearchOptions options_;
  PageFile file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<SequenceStore> store_;
  std::unique_ptr<PagedRTree> tree_;
  std::vector<Partition> partitions_;
  std::vector<size_t> lengths_;
};

}  // namespace mdseq

#endif  // MDSEQ_STORAGE_DISK_DATABASE_H_
