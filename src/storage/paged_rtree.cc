#include "storage/paged_rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"
#include "util/simd.h"

namespace mdseq {

namespace {

// Node page header.
struct NodeHeader {
  uint16_t level;
  uint16_t count;
  uint32_t dim;
};

size_t EntryBytes(size_t dim) { return 2 * dim * sizeof(double) + 8; }

// Serializes one entry (box + payload) at `offset` within the page.
void PutEntry(Page* page, size_t offset, size_t dim, const Mbr& box,
              uint64_t payload) {
  uint8_t* at = page->data + offset;
  std::memcpy(at, box.low().data(), dim * sizeof(double));
  at += dim * sizeof(double);
  std::memcpy(at, box.high().data(), dim * sizeof(double));
  at += dim * sizeof(double);
  std::memcpy(at, &payload, sizeof(payload));
}

void GetEntry(const Page& page, size_t offset, size_t dim, Mbr* box,
              uint64_t* payload) {
  const uint8_t* at = page.data + offset;
  Point low(dim);
  Point high(dim);
  std::memcpy(low.data(), at, dim * sizeof(double));
  at += dim * sizeof(double);
  std::memcpy(high.data(), at, dim * sizeof(double));
  at += dim * sizeof(double);
  std::memcpy(payload, at, sizeof(*payload));
  *box = Mbr(std::move(low), std::move(high));
}

NodeHeader GetHeader(const Page& page) {
  NodeHeader header;
  std::memcpy(&header, page.data, sizeof(header));
  return header;
}

// Splits [0, count) into parts whose sizes differ by at most one.
std::vector<std::pair<size_t, size_t>> EvenRanges(size_t count,
                                                  size_t parts) {
  std::vector<std::pair<size_t, size_t>> ranges;
  const size_t base = count / parts;
  const size_t extra = count % parts;
  size_t at = 0;
  for (size_t i = 0; i < parts; ++i) {
    const size_t size = base + (i < extra ? 1 : 0);
    if (size == 0) continue;
    ranges.emplace_back(at, at + size);
    at += size;
  }
  return ranges;
}

// One item of the level currently being packed: a box plus its payload
// (leaf value or child page id).
struct BuildItem {
  Mbr box;
  uint64_t payload;
};

// Sort-Tile-Recursive tiling of items[begin, end) into runs of at most
// `capacity`, appended to `runs`.
void StrTile(std::vector<BuildItem>& items, size_t begin, size_t end,
             size_t axis, size_t dim, size_t capacity,
             std::vector<std::pair<size_t, size_t>>* runs) {
  const size_t count = end - begin;
  if (count <= capacity) {
    if (count > 0) runs->emplace_back(begin, end);
    return;
  }
  std::sort(items.begin() + static_cast<ptrdiff_t>(begin),
            items.begin() + static_cast<ptrdiff_t>(end),
            [axis](const BuildItem& a, const BuildItem& b) {
              return a.box.Center(axis) < b.box.Center(axis);
            });
  const size_t pages = (count + capacity - 1) / capacity;
  if (axis + 1 == dim) {
    for (const auto& [b, e] : EvenRanges(count, pages)) {
      runs->emplace_back(begin + b, begin + e);
    }
    return;
  }
  const size_t remaining_axes = dim - axis;
  const auto slabs = static_cast<size_t>(std::ceil(
      std::pow(static_cast<double>(pages), 1.0 / remaining_axes)));
  for (const auto& [b, e] : EvenRanges(count, std::max<size_t>(1, slabs))) {
    StrTile(items, begin + b, begin + e, axis + 1, dim, capacity, runs);
  }
}

// Writes one node page holding items[begin, end); returns its page id (or
// kInvalidPageId on I/O failure) and its bounding box via *box_out.
PageId WriteNode(PageFile* file, const std::vector<BuildItem>& items,
                 size_t begin, size_t end, size_t level, size_t dim,
                 Mbr* box_out) {
  const PageId id = file->Allocate();
  if (id == kInvalidPageId) return kInvalidPageId;
  Page page;
  std::memset(page.data, 0, kPageSize);
  NodeHeader header;
  header.level = static_cast<uint16_t>(level);
  header.count = static_cast<uint16_t>(end - begin);
  header.dim = static_cast<uint32_t>(dim);
  std::memcpy(page.data, &header, sizeof(header));
  Mbr box(dim);
  size_t offset = sizeof(NodeHeader);
  for (size_t i = begin; i < end; ++i) {
    PutEntry(&page, offset, dim, items[i].box, items[i].payload);
    offset += EntryBytes(dim);
    box.Expand(items[i].box);
  }
  if (!file->Write(id, page)) return kInvalidPageId;
  *box_out = box;
  return id;
}

}  // namespace

size_t PagedRTree::PageCapacity(size_t dim) {
  return (kPageSize - sizeof(NodeHeader)) / EntryBytes(dim);
}

PageId PagedRTree::BuildInto(size_t dim, std::vector<IndexEntry> entries,
                             PageFile* file) {
  MDSEQ_CHECK(dim > 0);
  MDSEQ_CHECK(file != nullptr && file->is_open());
  const size_t capacity = PageCapacity(dim);
  MDSEQ_CHECK(capacity >= 2);

  std::vector<BuildItem> level_items;
  level_items.reserve(entries.size());
  for (IndexEntry& e : entries) {
    MDSEQ_CHECK(e.mbr.dim() == dim);
    level_items.push_back(BuildItem{std::move(e.mbr), e.value});
  }
  entries.clear();

  // Degenerate case: an empty tree is a single empty leaf page.
  if (level_items.empty()) {
    Mbr box(dim);
    std::vector<BuildItem> none;
    return WriteNode(file, none, 0, 0, 0, dim, &box);
  }

  size_t level = 0;
  while (true) {
    std::vector<std::pair<size_t, size_t>> runs;
    StrTile(level_items, 0, level_items.size(), 0, dim, capacity, &runs);
    std::vector<BuildItem> parents;
    parents.reserve(runs.size());
    for (const auto& [begin, end] : runs) {
      Mbr box(dim);
      const PageId id =
          WriteNode(file, level_items, begin, end, level, dim, &box);
      if (id == kInvalidPageId) return kInvalidPageId;
      parents.push_back(BuildItem{std::move(box), id});
    }
    if (parents.size() == 1) {
      return static_cast<PageId>(parents[0].payload);
    }
    level_items = std::move(parents);
    ++level;
  }
}

bool PagedRTree::Build(size_t dim, std::vector<IndexEntry> entries,
                       PageFile* file) {
  const PageId root = BuildInto(dim, std::move(entries), file);
  return root != kInvalidPageId && file->set_root_hint(root);
}

PagedRTree::PagedRTree(size_t dim, BufferPool* pool, PageId root)
    : dim_(dim), pool_(pool), root_(root) {
  MDSEQ_CHECK(dim > 0);
  MDSEQ_CHECK(pool != nullptr);
  if (root_ == kInvalidPageId) return;
  PageHandle handle = pool_->Fetch(root_);
  if (!handle.valid()) {
    root_ = kInvalidPageId;
    return;
  }
  const NodeHeader header = GetHeader(handle.page());
  MDSEQ_CHECK(header.dim == dim);
  height_ = static_cast<size_t>(header.level) + 1;
}

bool PagedRTree::RangeSearch(const Mbr& query, double epsilon,
                             std::vector<uint64_t>* out,
                             uint64_t* pages_visited,
                             uint64_t* pool_misses) const {
  MDSEQ_CHECK(query.is_valid());
  MDSEQ_CHECK(query.dim() == dim_);
  MDSEQ_CHECK(epsilon >= 0.0);
  const double eps2 = epsilon * epsilon;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    bool was_miss = false;
    PageHandle handle = pool_->Fetch(id, &was_miss);
    if (!handle.valid()) return false;
    if (pages_visited != nullptr) ++*pages_visited;
    if (pool_misses != nullptr && was_miss) ++*pool_misses;
    const NodeHeader header = GetHeader(handle.page());
    size_t offset = sizeof(NodeHeader);
    for (size_t i = 0; i < header.count; ++i) {
      Mbr box(dim_);
      uint64_t payload = 0;
      GetEntry(handle.page(), offset, dim_, &box, &payload);
      offset += EntryBytes(dim_);
      if (query.MinDist2(box) > eps2) continue;
      if (header.level == 0) {
        out->push_back(payload);
      } else {
        stack.push_back(static_cast<PageId>(payload));
      }
    }
  }
  return true;
}

bool PagedRTree::RangeSearchBatch(
    const std::vector<Mbr>& queries, double epsilon,
    std::vector<std::vector<SpatialIndex::BatchHit>>* out,
    uint64_t* pages_visited, uint64_t* pool_misses) const {
  MDSEQ_CHECK(out != nullptr);
  MDSEQ_CHECK(epsilon >= 0.0);
  out->assign(queries.size(), {});
  if (queries.empty()) return true;
  for (const Mbr& query : queries) {
    MDSEQ_CHECK(query.is_valid());
    MDSEQ_CHECK(query.dim() == dim_);
  }
  const double eps2 = epsilon * epsilon;

  // Each frame is a node page plus the probes whose search region reaches
  // it; a page shared by several probes is fetched (and accounted) once.
  struct Frame {
    PageId page;
    std::vector<uint32_t> active;
  };
  std::vector<uint32_t> all(queries.size());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<Frame> stack;
  stack.push_back(Frame{root_, std::move(all)});
  // Per-frame scratch, reused across the whole walk: the page's entries
  // decoded once into a dimension-major SoA (plus their payloads), and the
  // query × entry squared-distance matrix filled by one batched
  // rectangle-kernel pass per active probe (util/simd.h; bit-identical to
  // Mbr::MinDist2, so hit sets, hit order, and page-visit accounting match
  // the scalar walk exactly).
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<uint64_t> payloads;
  std::vector<double> d2;
  Mbr box(dim_);
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    bool was_miss = false;
    PageHandle handle = pool_->Fetch(frame.page, &was_miss);
    if (!handle.valid()) return false;
    if (pages_visited != nullptr) ++*pages_visited;
    if (pool_misses != nullptr && was_miss) ++*pool_misses;
    const NodeHeader header = GetHeader(handle.page());
    const size_t n = header.count;
    lo.resize(n * dim_);
    hi.resize(n * dim_);
    payloads.resize(n);
    size_t offset = sizeof(NodeHeader);
    for (size_t i = 0; i < n; ++i) {
      GetEntry(handle.page(), offset, dim_, &box, &payloads[i]);
      offset += EntryBytes(dim_);
      for (size_t k = 0; k < dim_; ++k) {
        lo[k * n + i] = box.low()[k];
        hi[k * n + i] = box.high()[k];
      }
    }
    d2.resize(frame.active.size() * n);
    for (size_t r = 0; r < frame.active.size(); ++r) {
      const Mbr& query = queries[frame.active[r]];
      simd::MinDist2Batch(query.low().data(), query.high().data(), lo.data(),
                          hi.data(), n, dim_, d2.data() + r * n);
    }
    if (header.level == 0) {
      for (size_t r = 0; r < frame.active.size(); ++r) {
        std::vector<SpatialIndex::BatchHit>& hits =
            (*out)[frame.active[r]];
        const double* row = d2.data() + r * n;
        for (size_t i = 0; i < n; ++i) {
          if (row[i] <= eps2) {
            hits.push_back(SpatialIndex::BatchHit{payloads[i], row[i]});
          }
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        std::vector<uint32_t> child_active;
        for (size_t r = 0; r < frame.active.size(); ++r) {
          if (d2[r * n + i] <= eps2) {
            child_active.push_back(frame.active[r]);
          }
        }
        if (!child_active.empty()) {
          stack.push_back(Frame{static_cast<PageId>(payloads[i]),
                                std::move(child_active)});
        }
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Dynamic insertion
// ---------------------------------------------------------------------------

namespace {

// A node materialized from its page for modification.
struct LoadedNode {
  uint16_t level = 0;
  std::vector<Mbr> boxes;
  std::vector<uint64_t> payloads;

  Mbr BoundingBox(size_t dim) const {
    Mbr box(dim);
    for (const Mbr& b : boxes) box.Expand(b);
    return box;
  }
};

bool LoadNode(BufferPool* pool, PageId id, size_t dim, LoadedNode* node) {
  PageHandle handle = pool->Fetch(id);
  if (!handle.valid()) return false;
  const NodeHeader header = GetHeader(handle.page());
  MDSEQ_CHECK(header.dim == dim);
  node->level = header.level;
  node->boxes.clear();
  node->payloads.clear();
  node->boxes.reserve(header.count);
  node->payloads.reserve(header.count);
  size_t offset = sizeof(NodeHeader);
  for (size_t i = 0; i < header.count; ++i) {
    Mbr box(dim);
    uint64_t payload = 0;
    GetEntry(handle.page(), offset, dim, &box, &payload);
    offset += EntryBytes(dim);
    node->boxes.push_back(std::move(box));
    node->payloads.push_back(payload);
  }
  return true;
}

bool StoreNode(BufferPool* pool, PageId id, size_t dim,
               const LoadedNode& node) {
  PageHandle handle = pool->Fetch(id);
  if (!handle.valid()) return false;
  Page* page = handle.mutable_page();
  std::memset(page->data, 0, kPageSize);
  NodeHeader header;
  header.level = node.level;
  header.count = static_cast<uint16_t>(node.boxes.size());
  header.dim = static_cast<uint32_t>(dim);
  std::memcpy(page->data, &header, sizeof(header));
  size_t offset = sizeof(NodeHeader);
  for (size_t i = 0; i < node.boxes.size(); ++i) {
    PutEntry(page, offset, dim, node.boxes[i], node.payloads[i]);
    offset += EntryBytes(dim);
  }
  handle.MarkDirty();
  return true;
}

// Guttman quadratic split of an overflowing loaded node: `node` keeps one
// group, the other is returned.
LoadedNode QuadraticSplit(LoadedNode* node, size_t min_fill) {
  const size_t total = node->boxes.size();
  // PickSeeds: the pair wasting the most volume.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < total; ++i) {
    for (size_t j = i + 1; j < total; ++j) {
      Mbr cover = node->boxes[i];
      cover.Expand(node->boxes[j]);
      const double waste = cover.Volume() - node->boxes[i].Volume() -
                           node->boxes[j].Volume();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  LoadedNode group_b;
  group_b.level = node->level;
  std::vector<Mbr> boxes = std::move(node->boxes);
  std::vector<uint64_t> payloads = std::move(node->payloads);
  node->boxes.clear();
  node->payloads.clear();

  Mbr box_a = boxes[seed_a];
  Mbr box_b = boxes[seed_b];
  node->boxes.push_back(boxes[seed_a]);
  node->payloads.push_back(payloads[seed_a]);
  group_b.boxes.push_back(boxes[seed_b]);
  group_b.payloads.push_back(payloads[seed_b]);

  std::vector<size_t> remaining;
  for (size_t i = 0; i < total; ++i) {
    if (i != seed_a && i != seed_b) remaining.push_back(i);
  }
  while (!remaining.empty()) {
    if (node->boxes.size() + remaining.size() == min_fill) {
      for (size_t i : remaining) {
        box_a.Expand(boxes[i]);
        node->boxes.push_back(boxes[i]);
        node->payloads.push_back(payloads[i]);
      }
      break;
    }
    if (group_b.boxes.size() + remaining.size() == min_fill) {
      for (size_t i : remaining) {
        box_b.Expand(boxes[i]);
        group_b.boxes.push_back(boxes[i]);
        group_b.payloads.push_back(payloads[i]);
      }
      break;
    }
    // PickNext: strongest preference first.
    size_t pick = 0;
    double best_diff = -1.0;
    for (size_t p = 0; p < remaining.size(); ++p) {
      const double d1 = box_a.Enlargement(boxes[remaining[p]]);
      const double d2 = box_b.Enlargement(boxes[remaining[p]]);
      if (std::abs(d1 - d2) > best_diff) {
        best_diff = std::abs(d1 - d2);
        pick = p;
      }
    }
    const size_t index = remaining[pick];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));
    const double d1 = box_a.Enlargement(boxes[index]);
    const double d2 = box_b.Enlargement(boxes[index]);
    const bool to_a =
        d1 != d2 ? d1 < d2 : node->boxes.size() <= group_b.boxes.size();
    if (to_a) {
      box_a.Expand(boxes[index]);
      node->boxes.push_back(boxes[index]);
      node->payloads.push_back(payloads[index]);
    } else {
      box_b.Expand(boxes[index]);
      group_b.boxes.push_back(boxes[index]);
      group_b.payloads.push_back(payloads[index]);
    }
  }
  return group_b;
}

// Fresh page for a COW node copy: recycles a reclaimed page when one is
// available, otherwise grows the file.
PageId AllocNodePage(PageFile* file, std::vector<PageId>* free_pages) {
  if (free_pages != nullptr && !free_pages->empty()) {
    const PageId id = free_pages->back();
    free_pages->pop_back();
    return id;
  }
  return file->Allocate();
}

}  // namespace

bool PagedRTree::CreateEmpty(size_t dim, PageFile* file) {
  MDSEQ_CHECK(dim > 0);
  MDSEQ_CHECK(file != nullptr && file->is_open());
  Mbr box(dim);
  std::vector<BuildItem> none;
  const PageId root = WriteNode(file, none, 0, 0, 0, dim, &box);
  return root != kInvalidPageId && file->set_root_hint(root);
}

bool PagedRTree::Insert(const Mbr& mbr, uint64_t value, PageFile* file) {
  MDSEQ_CHECK(mbr.is_valid());
  MDSEQ_CHECK(mbr.dim() == dim_);
  MDSEQ_CHECK(file != nullptr);
  MDSEQ_CHECK(valid());
  const size_t capacity = PageCapacity(dim_);
  const size_t min_fill = std::max<size_t>(1, capacity * 2 / 5);

  // Descend by minimum volume enlargement, remembering the path.
  struct PathStep {
    PageId page;
    size_t child_index;  // index of the chosen child within `page`
  };
  std::vector<PathStep> path;
  PageId current = root_;
  LoadedNode node;
  if (!LoadNode(pool_, current, dim_, &node)) return false;
  while (node.level > 0) {
    size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.boxes.size(); ++i) {
      const double enlargement = node.boxes[i].Enlargement(mbr);
      const double volume = node.boxes[i].Volume();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && volume < best_volume)) {
        best = i;
        best_enlargement = enlargement;
        best_volume = volume;
      }
    }
    path.push_back(PathStep{current, best});
    current = static_cast<PageId>(node.payloads[best]);
    if (!LoadNode(pool_, current, dim_, &node)) return false;
  }

  // Insert into the leaf, then propagate overflow splits upward.
  node.boxes.push_back(mbr);
  node.payloads.push_back(value);

  bool have_split = false;
  Mbr split_box(dim_);
  PageId split_page = kInvalidPageId;

  while (true) {
    if (node.boxes.size() <= capacity) {
      if (!StoreNode(pool_, current, dim_, node)) return false;
    } else {
      LoadedNode sibling = QuadraticSplit(&node, min_fill);
      const PageId sibling_page = file->Allocate();
      if (sibling_page == kInvalidPageId) return false;
      if (!StoreNode(pool_, current, dim_, node)) return false;
      if (!StoreNode(pool_, sibling_page, dim_, sibling)) return false;
      have_split = true;
      split_box = sibling.BoundingBox(dim_);
      split_page = sibling_page;
    }

    if (path.empty()) break;
    const PathStep step = path.back();
    path.pop_back();
    const Mbr child_box = node.BoundingBox(dim_);
    if (!LoadNode(pool_, step.page, dim_, &node)) return false;
    node.boxes[step.child_index] = child_box;
    if (have_split) {
      node.boxes.push_back(split_box);
      node.payloads.push_back(split_page);
      have_split = false;
    }
    current = step.page;
  }

  // Root split: allocate a new root holding the two halves.
  if (have_split) {
    const PageId new_root = file->Allocate();
    if (new_root == kInvalidPageId) return false;
    LoadedNode root_node;
    root_node.level = static_cast<uint16_t>(node.level + 1);
    root_node.boxes.push_back(node.BoundingBox(dim_));
    root_node.payloads.push_back(current);
    root_node.boxes.push_back(split_box);
    root_node.payloads.push_back(split_page);
    if (!StoreNode(pool_, new_root, dim_, root_node)) return false;
    root_ = new_root;
    height_ = static_cast<size_t>(root_node.level) + 1;
    if (!file->set_root_hint(root_)) return false;
  }
  return true;
}

bool PagedRTree::InsertCow(const Mbr& mbr, uint64_t value, PageFile* file,
                           std::vector<PageId>* retired,
                           std::vector<PageId>* free_pages) {
  MDSEQ_CHECK(mbr.is_valid());
  MDSEQ_CHECK(mbr.dim() == dim_);
  MDSEQ_CHECK(file != nullptr);
  MDSEQ_CHECK(valid());
  const size_t capacity = PageCapacity(dim_);
  const size_t min_fill = std::max<size_t>(1, capacity * 2 / 5);

  // Same ChooseLeaf descent as Insert, remembering the path so every node
  // on it can be replaced by a fresh copy on the way back up.
  struct PathStep {
    PageId page;
    size_t child_index;
  };
  std::vector<PathStep> path;
  PageId current = root_;
  LoadedNode node;
  if (!LoadNode(pool_, current, dim_, &node)) return false;
  while (node.level > 0) {
    size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.boxes.size(); ++i) {
      const double enlargement = node.boxes[i].Enlargement(mbr);
      const double volume = node.boxes[i].Volume();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && volume < best_volume)) {
        best = i;
        best_enlargement = enlargement;
        best_volume = volume;
      }
    }
    path.push_back(PathStep{current, best});
    current = static_cast<PageId>(node.payloads[best]);
    if (!LoadNode(pool_, current, dim_, &node)) return false;
  }

  node.boxes.push_back(mbr);
  node.payloads.push_back(value);

  bool have_split = false;
  Mbr split_box(dim_);
  PageId split_page = kInvalidPageId;
  PageId replacement = kInvalidPageId;

  while (true) {
    // Write the modified copy of `current` to a fresh page; the original
    // stays intact for readers pinned to the old root.
    if (node.boxes.size() <= capacity) {
      replacement = AllocNodePage(file, free_pages);
      if (replacement == kInvalidPageId) return false;
      if (!StoreNode(pool_, replacement, dim_, node)) return false;
    } else {
      LoadedNode sibling = QuadraticSplit(&node, min_fill);
      replacement = AllocNodePage(file, free_pages);
      if (replacement == kInvalidPageId) return false;
      const PageId sibling_page = AllocNodePage(file, free_pages);
      if (sibling_page == kInvalidPageId) return false;
      if (!StoreNode(pool_, replacement, dim_, node)) return false;
      if (!StoreNode(pool_, sibling_page, dim_, sibling)) return false;
      have_split = true;
      split_box = sibling.BoundingBox(dim_);
      split_page = sibling_page;
    }
    if (retired != nullptr) retired->push_back(current);

    if (path.empty()) break;
    const PathStep step = path.back();
    path.pop_back();
    const Mbr child_box = node.BoundingBox(dim_);
    if (!LoadNode(pool_, step.page, dim_, &node)) return false;
    node.boxes[step.child_index] = child_box;
    node.payloads[step.child_index] = replacement;
    if (have_split) {
      node.boxes.push_back(split_box);
      node.payloads.push_back(split_page);
      have_split = false;
    }
    current = step.page;
  }

  if (have_split) {
    // Root split: the new root holds the two halves of the old root's copy.
    const PageId new_root = AllocNodePage(file, free_pages);
    if (new_root == kInvalidPageId) return false;
    LoadedNode root_node;
    root_node.level = static_cast<uint16_t>(node.level + 1);
    root_node.boxes.push_back(node.BoundingBox(dim_));
    root_node.payloads.push_back(replacement);
    root_node.boxes.push_back(split_box);
    root_node.payloads.push_back(split_page);
    if (!StoreNode(pool_, new_root, dim_, root_node)) return false;
    root_ = new_root;
    height_ = static_cast<size_t>(root_node.level) + 1;
  } else {
    root_ = replacement;
  }
  return true;
}

bool PagedRTree::CheckInvariants() const {
  if (!valid()) return false;
  bool ok = true;
  auto fail = [&ok](const char* what) {
    std::fprintf(stderr, "PagedRTree invariant violated: %s\n", what);
    ok = false;
  };
  struct Frame {
    PageId page;
    size_t expected_level;
    bool has_parent_box;
    Mbr parent_box;
  };
  LoadedNode root_node;
  if (!LoadNode(pool_, root_, dim_, &root_node)) return false;
  std::vector<Frame> stack{Frame{root_, root_node.level, false, Mbr(dim_)}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    LoadedNode node;
    if (!LoadNode(pool_, frame.page, dim_, &node)) {
      fail("unreadable node page");
      continue;
    }
    if (node.level != frame.expected_level) fail("level mismatch");
    if (node.boxes.size() > PageCapacity(dim_)) fail("node over capacity");
    for (size_t i = 0; i < node.boxes.size(); ++i) {
      if (frame.has_parent_box && !frame.parent_box.Contains(node.boxes[i])) {
        fail("entry not contained in parent box");
      }
      if (node.level > 0) {
        stack.push_back(Frame{static_cast<PageId>(node.payloads[i]),
                              static_cast<size_t>(node.level - 1), true,
                              node.boxes[i]});
      }
    }
  }
  return ok;
}

size_t PagedRTree::CountEntries() const {
  size_t count = 0;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    PageHandle handle = pool_->Fetch(id);
    if (!handle.valid()) return count;
    const NodeHeader header = GetHeader(handle.page());
    if (header.level == 0) {
      count += header.count;
      continue;
    }
    size_t offset = sizeof(NodeHeader);
    for (size_t i = 0; i < header.count; ++i) {
      Mbr box(dim_);
      uint64_t payload = 0;
      GetEntry(handle.page(), offset, dim_, &box, &payload);
      offset += EntryBytes(dim_);
      stack.push_back(static_cast<PageId>(payload));
    }
  }
  return count;
}

}  // namespace mdseq
