#ifndef MDSEQ_STORAGE_BUFFER_POOL_H_
#define MDSEQ_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/page_file.h"

namespace mdseq {

class BufferPool;

/// Point-in-time occupancy + cumulative counters of a `BufferPool`, taken
/// under the pool latch so the occupancy numbers are mutually consistent.
/// This is the `/healthz` view of the pool.
struct BufferPoolHealth {
  size_t capacity = 0;
  /// Frames currently holding a page.
  size_t resident = 0;
  /// Frames with at least one pin (unevictable right now).
  size_t pinned = 0;
  /// Frames with unwritten modifications.
  size_t dirty = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// A pinned page in the buffer pool. While a handle is alive the frame is
/// not evictable; the destructor unpins. Mark modified pages dirty before
/// releasing.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle();
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const Page& page() const;
  Page* mutable_page();

  /// Marks the frame dirty; it is written back on eviction or Flush.
  void MarkDirty();

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, size_t frame)
      : pool_(pool), id_(id), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  size_t frame_ = 0;
};

/// Buffer pool over a `PageFile` — the database substrate that turns the
/// paper's "number of disk accesses" into a measurable quantity: index
/// traversals fetch pages through the pool, and the miss counter is the
/// real page-read count.
///
/// Two replacement policies are provided: exact LRU (default) and the
/// Clock approximation classic systems use (one reference bit per frame, a
/// sweeping hand, no list maintenance on hits). `bench/ablation_replacement`
/// compares their miss rates.
///
/// Thread-safe: pin/unpin/flush and the replacement bookkeeping are
/// serialized by one internal latch (page reads from the file happen under
/// it too — the single `PageFile` seek/read pair is not reentrant), and the
/// statistics counters are atomic. Reading the *contents* of a pinned page
/// through a `PageHandle` is lock-free; concurrent readers may share a
/// pinned frame. Writers (`MarkDirty` + mutation of the same page) still
/// need external coordination — the query engine only ever reads.
/// The pool must outlive all its handles.
class BufferPool {
 public:
  enum class Policy { kLru, kClock };

  /// `capacity` frames of kPageSize each. The file must outlive the pool.
  BufferPool(PageFile* file, size_t capacity, Policy policy = Policy::kLru);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the file on a miss. Returns an
  /// invalid handle if the id is out of range, on I/O failure, or if every
  /// frame is pinned. When `was_miss` is non-null it reports whether this
  /// call read the page from the file — per-call attribution that stays
  /// exact when concurrent queries share the pool (the cumulative
  /// `hits()`/`misses()` counters cannot be differenced per query).
  PageHandle Fetch(PageId id, bool* was_miss = nullptr);

  /// Allocates a fresh page in the file and pins it (zeroed, dirty).
  PageHandle Allocate();

  /// Writes back every dirty frame. Returns false if any write fails.
  bool Flush();

  size_t capacity() const { return frames_.size(); }

  /// Consistent occupancy snapshot for health probes; takes the latch.
  BufferPoolHealth Health() const;

  /// Statistics: pool hits, misses (= real page reads through the pool),
  /// and evictions. Cumulative across all threads.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    int pins = 0;
    bool dirty = false;
    bool referenced = false;  // Clock policy's second-chance bit
  };

  // Returns the frame index holding `id`, loading/evicting as needed, or
  // SIZE_MAX on failure. `was_miss` (optional) reports a file read.
  size_t Acquire(PageId id, bool load_from_file, bool* was_miss = nullptr);
  void Unpin(size_t frame);
  void Touch(size_t frame);
  bool EvictSomeFrame(size_t* frame_out);
  bool EvictLru(size_t* frame_out);
  bool EvictClock(size_t* frame_out);
  bool WriteBackAndRelease(size_t frame);

  PageFile* file_;
  Policy policy_;
  /// Serializes all pool state (frames' metadata, table, LRU/clock) and the
  /// underlying file I/O. Page *contents* of pinned frames are read outside
  /// the latch.
  mutable std::mutex mutex_;
  size_t clock_hand_ = 0;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> table_;
  /// Frame indices in LRU order (front = least recently used); only
  /// unpinned frames are eligible for eviction.
  std::list<size_t> lru_;
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_position_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace mdseq

#endif  // MDSEQ_STORAGE_BUFFER_POOL_H_
