#ifndef MDSEQ_STORAGE_PAGE_FILE_H_
#define MDSEQ_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mdseq {

/// Size of every page, matching the classic 4 KiB database page the
/// paper-era systems (and its FRM cost model) assume.
inline constexpr size_t kPageSize = 4096;

/// Identifier of a page within a file; pages are dense from 0.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// A fixed-size page buffer.
struct Page {
  uint8_t data[kPageSize];
};

/// File-backed page store with a small self-describing header. All I/O is
/// page-granular; failures are reported through return values (no
/// exceptions). Not thread-safe.
///
/// File layout: page 0 is the header (magic, version, page count, root
/// page hint for whatever structure lives in the file); data pages follow.
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Creates (truncating) a new page file. Returns false on I/O failure.
  bool Create(const std::string& path);

  /// Opens an existing page file, validating the header.
  bool Open(const std::string& path);

  /// Flushes and closes; safe to call twice.
  void Close();

  bool is_open() const { return file_ != nullptr; }

  /// Allocates a fresh zeroed page at the end of the file; returns its id
  /// or kInvalidPageId on failure.
  PageId Allocate();

  /// Reads page `id` into `*page`. Returns false on I/O failure or
  /// out-of-range id.
  bool Read(PageId id, Page* page);

  /// Writes `page` to page `id` (must have been allocated).
  bool Write(PageId id, const Page& page);

  /// Number of data pages allocated.
  uint32_t page_count() const { return page_count_; }

  /// An application-defined root page id persisted in the header (e.g. the
  /// R-tree root). Defaults to kInvalidPageId.
  PageId root_hint() const { return root_hint_; }
  bool set_root_hint(PageId id);

  /// Lifetime I/O counters (real pread/pwrite operations).
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  bool WriteHeader();
  bool ReadHeader();

  std::FILE* file_ = nullptr;
  uint32_t page_count_ = 0;
  PageId root_hint_ = kInvalidPageId;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace mdseq

#endif  // MDSEQ_STORAGE_PAGE_FILE_H_
