#ifndef MDSEQ_STORAGE_PAGE_FILE_H_
#define MDSEQ_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mdseq {

/// Size of every page, matching the classic 4 KiB database page the
/// paper-era systems (and its FRM cost model) assume.
inline constexpr size_t kPageSize = 4096;

/// Identifier of a page within a file; pages are dense from 0.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// A fixed-size page buffer.
struct Page {
  uint8_t data[kPageSize];
};

/// File-backed page store with a small self-describing header. All I/O is
/// page-granular; failures are reported through return values (no
/// exceptions). Not thread-safe, except that the lifetime I/O counters
/// may be read concurrently with I/O (they feed the /metrics gauges).
///
/// File layout: page 0 is the header (magic, version, page count, root
/// page hint for whatever structure lives in the file); data pages follow.
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Creates (truncating) a new page file. Returns false on I/O failure.
  bool Create(const std::string& path);

  /// Opens an existing page file, validating the header.
  bool Open(const std::string& path);

  /// Flushes and closes; safe to call twice.
  void Close();

  bool is_open() const { return file_ != nullptr; }

  /// Allocates a fresh zeroed page at the end of the file; returns its id
  /// or kInvalidPageId on failure.
  PageId Allocate();

  /// Reads page `id` into `*page`. Returns false on I/O failure or
  /// out-of-range id.
  bool Read(PageId id, Page* page);

  /// Writes `page` to page `id` (must have been allocated).
  bool Write(PageId id, const Page& page);

  /// Durability barrier: flushes stdio buffers and fsyncs the file so every
  /// completed Write() is on stable storage. Does NOT write the header —
  /// `set_root_hint` stays the single commit point for structural changes.
  bool Sync();

  /// Number of data pages allocated. Like the I/O counters, safe to read
  /// from any thread while another thread performs I/O.
  uint32_t page_count() const {
    return page_count_.load(std::memory_order_relaxed);
  }

  /// An application-defined root page id persisted in the header (e.g. the
  /// R-tree root). Defaults to kInvalidPageId.
  PageId root_hint() const { return root_hint_; }
  bool set_root_hint(PageId id);

  /// Lifetime I/O counters (real pread/pwrite operations). Safe to read
  /// from any thread while another thread performs I/O.
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

  /// Lifetime fsync count (Sync() calls that reached the disk).
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

 private:
  bool WriteHeader();
  bool ReadHeader();

  std::FILE* file_ = nullptr;
  std::atomic<uint32_t> page_count_{0};
  PageId root_hint_ = kInvalidPageId;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace mdseq

#endif  // MDSEQ_STORAGE_PAGE_FILE_H_
