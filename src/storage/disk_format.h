#ifndef MDSEQ_STORAGE_DISK_FORMAT_H_
#define MDSEQ_STORAGE_DISK_FORMAT_H_

#include <cstdint>

#include "core/partitioning.h"
#include "storage/page_file.h"
#include "storage/page_stream.h"

namespace mdseq::diskfmt {

/// Master meta page of a database file: ties together the sequence store,
/// the index, the partition region, and the options a query needs to
/// partition itself consistently. Shared by the read-only `DiskDatabase`
/// and the live ingest path (`LiveDatabase`), which must agree byte for
/// byte so a checkpointed live database is a valid `DiskDatabase` file.
struct MasterLayout {
  uint64_t dim;
  uint64_t sequence_count;
  PageId store_meta_page;
  PageId index_root_page;
  PageId partitions_first_page;
  uint32_t partitions_page_count;
  double side_growth;
  uint64_t max_points;
  uint8_t cost_model;  // PartitioningOptions::CostModel
};
static_assert(sizeof(MasterLayout) <= kPageSize);

/// Partition region byte format, per sequence:
///   u64 piece_count, then per piece: u64 begin, u64 end,
///   dim doubles low, dim doubles high.
inline bool AppendPartition(PageStreamWriter* out, const Partition& partition,
                            size_t dim) {
  const uint64_t pieces = partition.size();
  if (!out->Append(&pieces, sizeof(pieces))) return false;
  for (const SequenceMbr& piece : partition) {
    const uint64_t begin = piece.begin;
    const uint64_t end = piece.end;
    if (!out->Append(&begin, sizeof(begin))) return false;
    if (!out->Append(&end, sizeof(end))) return false;
    if (!out->Append(piece.mbr.low().data(), dim * sizeof(double))) {
      return false;
    }
    if (!out->Append(piece.mbr.high().data(), dim * sizeof(double))) {
      return false;
    }
  }
  return true;
}

inline bool ReadPartition(PageStreamReader* in, size_t dim,
                          Partition* partition) {
  uint64_t pieces = 0;
  if (!in->Read(&pieces, sizeof(pieces))) return false;
  partition->clear();
  partition->reserve(pieces);
  for (uint64_t p = 0; p < pieces; ++p) {
    uint64_t begin = 0;
    uint64_t end = 0;
    Point low(dim);
    Point high(dim);
    if (!in->Read(&begin, sizeof(begin))) return false;
    if (!in->Read(&end, sizeof(end))) return false;
    if (!in->Read(low.data(), dim * sizeof(double))) return false;
    if (!in->Read(high.data(), dim * sizeof(double))) return false;
    partition->push_back(SequenceMbr{Mbr(std::move(low), std::move(high)),
                                     static_cast<size_t>(begin),
                                     static_cast<size_t>(end)});
  }
  return true;
}

}  // namespace mdseq::diskfmt

#endif  // MDSEQ_STORAGE_DISK_FORMAT_H_
