#include "storage/buffer_pool.h"

#include <cstring>

#include "util/check.h"

namespace mdseq {

// ---------------------------------------------------------------------------
// PageHandle
// ---------------------------------------------------------------------------

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), id_(other.id_), frame_(other.frame_) {
  other.pool_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

const Page& PageHandle::page() const {
  MDSEQ_CHECK(valid());
  return pool_->frames_[frame_].page;
}

Page* PageHandle::mutable_page() {
  MDSEQ_CHECK(valid());
  return &pool_->frames_[frame_].page;
}

void PageHandle::MarkDirty() {
  MDSEQ_CHECK(valid());
  std::lock_guard<std::mutex> lock(pool_->mutex_);
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(PageFile* file, size_t capacity, Policy policy)
    : file_(file), policy_(policy) {
  MDSEQ_CHECK(file != nullptr);
  MDSEQ_CHECK(capacity >= 1);
  frames_.resize(capacity);
}

BufferPool::~BufferPool() { Flush(); }

void BufferPool::Touch(size_t frame) {
  if (policy_ == Policy::kClock) {
    frames_[frame].referenced = true;
    return;
  }
  auto it = lru_position_.find(frame);
  if (it != lru_position_.end()) {
    lru_.erase(it->second);
  }
  lru_.push_back(frame);
  lru_position_[frame] = std::prev(lru_.end());
}

bool BufferPool::WriteBackAndRelease(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  if (frame.dirty) {
    if (!file_->Write(frame.id, frame.page)) return false;
    frame.dirty = false;
  }
  table_.erase(frame.id);
  frame.id = kInvalidPageId;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool BufferPool::EvictLru(size_t* frame_out) {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    Frame& frame = frames_[*it];
    if (frame.pins > 0) continue;
    const size_t frame_index = *it;
    if (!WriteBackAndRelease(frame_index)) return false;
    lru_position_.erase(frame_index);
    lru_.erase(it);
    *frame_out = frame_index;
    return true;
  }
  return false;  // every frame pinned
}

bool BufferPool::EvictClock(size_t* frame_out) {
  // Sweep at most two full revolutions: the first clears reference bits,
  // the second must find a victim unless everything is pinned.
  for (size_t step = 0; step < 2 * frames_.size(); ++step) {
    Frame& frame = frames_[clock_hand_];
    const size_t frame_index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (frame.pins > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;  // second chance
      continue;
    }
    if (!WriteBackAndRelease(frame_index)) return false;
    *frame_out = frame_index;
    return true;
  }
  return false;  // every frame pinned
}

bool BufferPool::EvictSomeFrame(size_t* frame_out) {
  // Prefer a never-used frame.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].id == kInvalidPageId) {
      *frame_out = i;
      return true;
    }
  }
  return policy_ == Policy::kClock ? EvictClock(frame_out)
                                   : EvictLru(frame_out);
}

size_t BufferPool::Acquire(PageId id, bool load_from_file, bool* was_miss) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (was_miss != nullptr) *was_miss = false;
    Touch(it->second);
    ++frames_[it->second].pins;
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (was_miss != nullptr) *was_miss = true;
  size_t frame_index = 0;
  if (!EvictSomeFrame(&frame_index)) return SIZE_MAX;
  Frame& frame = frames_[frame_index];
  if (load_from_file) {
    if (!file_->Read(id, &frame.page)) return SIZE_MAX;
  } else {
    std::memset(frame.page.data, 0, kPageSize);
  }
  frame.id = id;
  frame.pins = 1;
  frame.dirty = false;
  table_[id] = frame_index;
  Touch(frame_index);
  return frame_index;
}

PageHandle BufferPool::Fetch(PageId id, bool* was_miss) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t frame = Acquire(id, /*load_from_file=*/true, was_miss);
  if (frame == SIZE_MAX) return PageHandle();
  return PageHandle(this, id, frame);
}

PageHandle BufferPool::Allocate() {
  std::lock_guard<std::mutex> lock(mutex_);
  const PageId id = file_->Allocate();
  if (id == kInvalidPageId) return PageHandle();
  const size_t frame = Acquire(id, /*load_from_file=*/false);
  if (frame == SIZE_MAX) return PageHandle();
  frames_[frame].dirty = true;
  return PageHandle(this, id, frame);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  MDSEQ_CHECK(frame < frames_.size());
  MDSEQ_CHECK(frames_[frame].pins > 0);
  --frames_[frame].pins;
}

BufferPoolHealth BufferPool::Health() const {
  BufferPoolHealth health;
  health.capacity = frames_.size();
  health.hits = hits();
  health.misses = misses();
  health.evictions = evictions();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Frame& frame : frames_) {
    if (frame.id == kInvalidPageId) continue;
    ++health.resident;
    if (frame.pins > 0) ++health.pinned;
    if (frame.dirty) ++health.dirty;
  }
  return health;
}

bool BufferPool::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  bool ok = true;
  for (Frame& frame : frames_) {
    if (frame.id == kInvalidPageId || !frame.dirty) continue;
    if (file_->Write(frame.id, frame.page)) {
      frame.dirty = false;
    } else {
      ok = false;
    }
  }
  return ok;
}

}  // namespace mdseq
