#ifndef MDSEQ_STORAGE_SEQUENCE_STORE_H_
#define MDSEQ_STORAGE_SEQUENCE_STORE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/sequence.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace mdseq {

/// Disk-resident storage for the raw sequences themselves, so that the
/// refinement step (exact distances, solution-interval reporting) can be
/// charged in page reads just like the index traversal. Records are
/// variable-length and span pages freely; a directory maps sequence ids to
/// byte offsets.
///
/// File layout (ids are `PageFile` pages):
///   header (PageFile) | meta page | data pages ... | directory pages ...
/// The meta page id is stored in the file's root hint. Write once, then
/// read-only.
class SequenceStore {
 public:
  /// Writes the whole corpus into `file` (open and fresh) and stores the
  /// meta page in the file header. Returns false on I/O failure.
  static bool Write(const std::vector<Sequence>& corpus, PageFile* file);

  /// As `Write`, but returns the meta page instead of claiming the file
  /// header — for files shared with other structures (see DiskDatabase).
  /// Returns kInvalidPageId on failure.
  static PageId WriteInto(const std::vector<Sequence>& corpus,
                          PageFile* file);

  /// Attaches to a store whose meta page is `meta_page`; loads the
  /// directory through `pool`. The pool (and file) must outlive the store.
  /// Check `valid()` afterwards.
  SequenceStore(BufferPool* pool, PageId meta_page);

  /// Convenience: attaches using the file's root hint.
  SequenceStore(BufferPool* pool, const PageFile& file)
      : SequenceStore(pool, file.root_hint()) {}

  bool valid() const { return valid_; }

  /// Number of stored sequences.
  size_t size() const { return directory_.size(); }

  /// Reads sequence `id` through the buffer pool; nullopt on I/O failure.
  std::optional<Sequence> Read(size_t id) const;

 private:
  struct DirectoryEntry {
    uint64_t offset;  ///< byte offset within the data region
    uint64_t dim;
    uint64_t length;  ///< number of points
  };

  BufferPool* pool_;
  bool valid_ = false;
  PageId data_first_page_ = kInvalidPageId;
  std::vector<DirectoryEntry> directory_;
};

}  // namespace mdseq

#endif  // MDSEQ_STORAGE_SEQUENCE_STORE_H_
