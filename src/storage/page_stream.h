#ifndef MDSEQ_STORAGE_PAGE_STREAM_H_
#define MDSEQ_STORAGE_PAGE_STREAM_H_

#include <cstring>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace mdseq {

/// Appends raw bytes across consecutive fresh pages of a file. Pages are
/// allocated on demand, so a region written by one streamer occupies a
/// contiguous run of page ids (no other allocations may interleave).
class PageStreamWriter {
 public:
  explicit PageStreamWriter(PageFile* file) : file_(file) {
    std::memset(buffer_.data, 0, kPageSize);
  }

  /// Appends `count` bytes; returns false on allocation/write failure.
  bool Append(const void* bytes, size_t count) {
    const uint8_t* at = static_cast<const uint8_t*>(bytes);
    while (count > 0) {
      if (first_page_ == kInvalidPageId || used_ == kPageSize) {
        if (!FlushPage()) return false;
        const PageId id = file_->Allocate();
        if (id == kInvalidPageId) return false;
        if (first_page_ == kInvalidPageId) first_page_ = id;
        current_page_ = id;
        used_ = 0;
        ++page_count_;
        std::memset(buffer_.data, 0, kPageSize);
      }
      const size_t room = kPageSize - used_;
      const size_t chunk = count < room ? count : room;
      std::memcpy(buffer_.data + used_, at, chunk);
      used_ += chunk;
      at += chunk;
      count -= chunk;
      total_ += chunk;
    }
    return true;
  }

  /// Flushes the trailing partial page. Call once after the last Append.
  bool Finish() { return FlushPage(); }

  /// First page of the region (kInvalidPageId if nothing was written).
  PageId first_page() const { return first_page_; }
  uint32_t page_count() const { return page_count_; }
  uint64_t total_bytes() const { return total_; }

 private:
  bool FlushPage() {
    if (current_page_ == kInvalidPageId || used_ == 0) return true;
    return file_->Write(current_page_, buffer_);
  }

  PageFile* file_;
  Page buffer_;
  PageId first_page_ = kInvalidPageId;
  PageId current_page_ = kInvalidPageId;
  size_t used_ = 0;
  uint32_t page_count_ = 0;
  uint64_t total_ = 0;
};

/// Reads raw bytes from a contiguous page region through a buffer pool,
/// starting `offset` bytes into the region.
class PageStreamReader {
 public:
  PageStreamReader(BufferPool* pool, PageId first_page, uint64_t offset)
      : pool_(pool), first_page_(first_page), offset_(offset) {}

  /// Reads `count` bytes; returns false on a fetch failure.
  bool Read(void* bytes, size_t count) {
    uint8_t* at = static_cast<uint8_t*>(bytes);
    while (count > 0) {
      const PageId page_id =
          first_page_ + static_cast<PageId>(offset_ / kPageSize);
      const size_t within = static_cast<size_t>(offset_ % kPageSize);
      PageHandle handle = pool_->Fetch(page_id);
      if (!handle.valid()) return false;
      const size_t room = kPageSize - within;
      const size_t chunk = count < room ? count : room;
      std::memcpy(at, handle.page().data + within, chunk);
      offset_ += chunk;
      at += chunk;
      count -= chunk;
    }
    return true;
  }

 private:
  BufferPool* pool_;
  PageId first_page_;
  uint64_t offset_;
};

}  // namespace mdseq

#endif  // MDSEQ_STORAGE_PAGE_STREAM_H_
