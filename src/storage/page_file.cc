#include "storage/page_file.h"

#include <cstring>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

#include "util/check.h"

namespace mdseq {

namespace {

constexpr char kMagic[8] = {'M', 'D', 'S', 'Q', 'P', 'A', 'G', 'E'};
constexpr uint32_t kVersion = 1;

// Header page layout: magic[8] | version u32 | page_count u32 |
// root_hint u32. The rest of the page is reserved.
struct HeaderLayout {
  char magic[8];
  uint32_t version;
  uint32_t page_count;
  PageId root_hint;
};
static_assert(sizeof(HeaderLayout) <= kPageSize);

}  // namespace

PageFile::~PageFile() { Close(); }

bool PageFile::Create(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "wb+");
  if (file_ == nullptr) return false;
  page_count_.store(0, std::memory_order_relaxed);
  root_hint_ = kInvalidPageId;
  reads_.store(0, std::memory_order_relaxed);
  writes_.store(0, std::memory_order_relaxed);
  syncs_.store(0, std::memory_order_relaxed);
  return WriteHeader();
}

bool PageFile::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "rb+");
  if (file_ == nullptr) return false;
  if (!ReadHeader()) {
    Close();
    return false;
  }
  return true;
}

void PageFile::Close() {
  if (file_ != nullptr) {
    WriteHeader();
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool PageFile::WriteHeader() {
  if (file_ == nullptr) return false;
  Page header;
  std::memset(header.data, 0, kPageSize);
  HeaderLayout layout;
  std::memcpy(layout.magic, kMagic, sizeof(kMagic));
  layout.version = kVersion;
  layout.page_count = page_count_.load(std::memory_order_relaxed);
  layout.root_hint = root_hint_;
  std::memcpy(header.data, &layout, sizeof(layout));
  if (std::fseek(file_, 0, SEEK_SET) != 0) return false;
  if (std::fwrite(header.data, 1, kPageSize, file_) != kPageSize) {
    return false;
  }
  return std::fflush(file_) == 0;
}

bool PageFile::ReadHeader() {
  Page header;
  if (std::fseek(file_, 0, SEEK_SET) != 0) return false;
  if (std::fread(header.data, 1, kPageSize, file_) != kPageSize) {
    return false;
  }
  HeaderLayout layout;
  std::memcpy(&layout, header.data, sizeof(layout));
  if (std::memcmp(layout.magic, kMagic, sizeof(kMagic)) != 0) return false;
  if (layout.version != kVersion) return false;
  page_count_.store(layout.page_count, std::memory_order_relaxed);
  root_hint_ = layout.root_hint;
  return true;
}

PageId PageFile::Allocate() {
  if (file_ == nullptr) return kInvalidPageId;
  const PageId id = page_count_.load(std::memory_order_relaxed);
  Page zero;
  std::memset(zero.data, 0, kPageSize);
  // Write() range-checks against the new count.
  page_count_.store(id + 1, std::memory_order_relaxed);
  if (!Write(id, zero)) {
    page_count_.store(id, std::memory_order_relaxed);
    return kInvalidPageId;
  }
  return id;
}

bool PageFile::Read(PageId id, Page* page) {
  MDSEQ_CHECK(page != nullptr);
  if (file_ == nullptr || id >= page_count_.load(std::memory_order_relaxed)) {
    return false;
  }
  const long offset = static_cast<long>((id + 1)) *
                      static_cast<long>(kPageSize);
  if (std::fseek(file_, offset, SEEK_SET) != 0) return false;
  if (std::fread(page->data, 1, kPageSize, file_) != kPageSize) {
    return false;
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PageFile::Write(PageId id, const Page& page) {
  if (file_ == nullptr || id >= page_count_.load(std::memory_order_relaxed)) {
    return false;
  }
  const long offset = static_cast<long>((id + 1)) *
                      static_cast<long>(kPageSize);
  if (std::fseek(file_, offset, SEEK_SET) != 0) return false;
  if (std::fwrite(page.data, 1, kPageSize, file_) != kPageSize) {
    return false;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PageFile::Sync() {
  if (file_ == nullptr) return false;
  if (std::fflush(file_) != 0) return false;
#if defined(_WIN32)
  if (_commit(_fileno(file_)) != 0) return false;
#else
  if (::fsync(fileno(file_)) != 0) return false;
#endif
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PageFile::set_root_hint(PageId id) {
  root_hint_ = id;
  return WriteHeader();
}

}  // namespace mdseq
