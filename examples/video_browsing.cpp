// Video browsing: the paper's headline application (Section 1).
//
// "Select videos in a database which contain the sub-streams that are
//  similar to a given news video, and play those sub-streams only."
//
// This example synthesizes a small archive of video streams, renders real
// RGB rasters and extracts per-frame color features (the paper's feature
// pipeline), indexes the archive, then issues a clip query. The matches are
// reported as play ranges (solution intervals) with timestamps — instead of
// browsing whole streams, only the found sub-streams would be played.

#include <cstdio>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/search.h"
#include "gen/video.h"
#include "util/random.h"

namespace {

constexpr double kFps = 25.0;  // timestamps assume 25 frames per second

void PrintTimestamp(size_t frame) {
  const double seconds = frame / kFps;
  std::printf("%02d:%05.2f", static_cast<int>(seconds) / 60,
              seconds - 60.0 * (static_cast<int>(seconds) / 60));
}

}  // namespace

int main() {
  using namespace mdseq;

  // 1. Build the archive: 60 streams of 8-20 seconds, each rendered as
  //    shot-structured RGB frames and mapped to 3-d color features.
  Rng rng(2024);
  const VideoOptions video_options;
  SequenceDatabase archive(/*dim=*/3);
  std::vector<VideoStream> streams;
  for (int i = 0; i < 60; ++i) {
    const size_t frames = static_cast<size_t>(rng.UniformInt(200, 500));
    streams.push_back(GenerateVideoStream(frames, video_options, &rng));
    archive.Add(ExtractColorFeatures(streams.back()));
  }
  std::printf("archive: %zu streams, %zu frames total, %zu shot MBRs "
              "indexed\n\n",
              archive.num_sequences(), archive.total_points(),
              archive.total_mbrs());

  // 2. The query: a 3-second clip cut from stream 17 (as if a user marked
  //    an interesting scene and asked "where else does this appear?").
  const size_t clip_begin = 120;
  const size_t clip_end = 120 + 75;
  const Sequence query = archive.sequence(17)
                             .Slice(clip_begin, clip_end)
                             .Materialize();
  const double epsilon = 0.08;
  std::printf("query: %zu-frame clip from stream 17 [", query.size());
  PrintTimestamp(clip_begin);
  std::printf(" - ");
  PrintTimestamp(clip_end);
  std::printf("], eps = %.2f\n\n", epsilon);

  // 3. Search and report play ranges. The three filter phases prune the
  //    archive (no false dismissals); verification confirms the survivors
  //    against the raw features and yields the exact play ranges.
  SimilaritySearch engine(&archive);
  const SearchResult result = engine.SearchVerified(query.View(), epsilon);
  std::printf("%zu candidate stream(s) after the index phase, %zu verified "
              "match(es), %llu index node accesses\n\n",
              result.candidates.size(), result.matches.size(),
              static_cast<unsigned long long>(result.stats.node_accesses));
  for (const SequenceMatch& match : result.matches) {
    std::printf("stream %2zu (distance %.4f) -> play:", match.sequence_id,
                match.exact_distance);
    for (const Interval& play : match.solution_interval) {
      std::printf("  [");
      PrintTimestamp(play.begin);
      std::printf(" - ");
      PrintTimestamp(play.end);
      std::printf("]");
    }
    std::printf("\n");
  }

  // 4. Sanity: the exact scan agrees on which streams qualify.
  SequentialScan scan(&archive);
  const std::vector<ScanMatch> exact = scan.Search(query.View(), epsilon);
  std::printf("\nexact scan confirms %zu stream(s) within the threshold\n",
              exact.size());
  return 0;
}
