// Quickstart: build a small database of multidimensional sequences, run one
// similarity query, and print the matched sequences with their solution
// intervals.
//
//   $ ./quickstart
//
// The public API used here:
//   - SequenceDatabase: partitions sequences into MBRs and indexes them
//   - SimilaritySearch: the paper's three-phase query algorithm
//   - SequentialScan:   the exact baseline, to show the results agree

#include <cstdio>

#include "baseline/sequential_scan.h"
#include "core/search.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"

int main() {
  using namespace mdseq;

  // 1. Generate a small corpus of 3-d sequences (stand-ins for video
  //    feature streams) and load them into a database. Adding a sequence
  //    partitions it with the marginal-cost algorithm and indexes every
  //    subsequence MBR in an R*-tree.
  Rng rng(7);
  FractalOptions gen_options;
  SequenceDatabase database(/*dim=*/3);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 100; ++i) {
    corpus.push_back(GenerateFractalSequence(256, gen_options, &rng));
    database.Add(corpus.back());
  }
  std::printf("database: %zu sequences, %zu points, %zu MBRs indexed\n",
              database.num_sequences(), database.total_points(),
              database.total_mbrs());

  // 2. Draw a query: a noisy subsequence of one stored sequence.
  QueryWorkloadOptions query_options;
  query_options.min_length = 48;
  query_options.max_length = 96;
  const Sequence query = DrawQuery(corpus, query_options, &rng);
  const double epsilon = 0.10;
  std::printf("query: %zu points, threshold eps = %.2f\n\n", query.size(),
              epsilon);

  // 3. Run the three-phase search. `Search` returns the paper's pruned
  //    candidate set (lower-bound tests only — no false dismissals, some
  //    false hits); `SearchVerified` additionally refines it against the
  //    raw sequences.
  SimilaritySearch engine(&database);
  const SearchResult filtered = engine.Search(query.View(), epsilon);
  std::printf("filter phases: %zu candidates after Dmbr, %zu after Dnorm\n",
              filtered.candidates.size(), filtered.matches.size());

  const SearchResult result = engine.SearchVerified(query.View(), epsilon);
  std::printf("verified matches: %zu\n", result.matches.size());
  for (const SequenceMatch& match : result.matches) {
    std::printf("  sequence %zu (distance %.4f), solution interval:",
                match.sequence_id, match.exact_distance);
    for (const Interval& interval : match.solution_interval) {
      std::printf(" [%zu, %zu)", interval.begin, interval.end);
    }
    std::printf("\n");
  }

  // 4. Cross-check against the exact sequential scan: every truly similar
  //    sequence must appear among the matches (no false dismissal).
  SequentialScan scan(&database);
  const std::vector<ScanMatch> exact = scan.Search(query.View(), epsilon);
  std::printf("\nexact scan found %zu sequence(s) within eps:\n",
              exact.size());
  for (const ScanMatch& match : exact) {
    std::printf("  sequence %zu at distance %.4f\n", match.sequence_id,
                match.distance);
  }
  return 0;
}
