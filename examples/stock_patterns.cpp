// Stock patterns: the classic time-series queries the paper generalizes
// (Section 1): "Identify companies whose stock prices show similar
// movements during the last year to that of a given company."
//
// One-dimensional price series are a special case of multidimensional
// sequences (Definition 1 with n = 1). This example runs the same MBR
// machinery on 1-d random-walk "price histories", and also demonstrates the
// sliding-window embedding and the Agrawal '93 DFT whole-matching baseline
// from the related work.

#include <cstdio>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/search.h"
#include "gen/walk.h"
#include "ts/dtw.h"
#include "ts/frm.h"
#include "ts/sliding_window.h"
#include "ts/whole_matching.h"
#include "util/random.h"

int main() {
  using namespace mdseq;
  Rng rng(1987);

  // 1. 200 "companies", each a year of daily prices (252 trading days),
  //    modeled as clamped random walks in [0, 1).
  WalkOptions walk;
  walk.dim = 1;
  walk.step_stddev = 0.01;
  const size_t days = 252;
  std::vector<Sequence> prices;
  SequenceDatabase database(/*dim=*/1);
  for (int company = 0; company < 200; ++company) {
    prices.push_back(GenerateRandomWalk(days, walk, &rng));
    database.Add(prices.back());
  }
  std::printf("database: %zu price histories x %zu days, %zu MBRs\n\n",
              database.num_sequences(), days, database.total_mbrs());

  // 2. Subsequence query: "which companies had a quarter that moved like
  //    company 42's second quarter?" — the paper's engine on 1-d data.
  const Sequence pattern = prices[42].Slice(63, 126).Materialize();
  const double epsilon = 0.01;
  SimilaritySearch engine(&database);
  const SearchResult result = engine.SearchVerified(pattern.View(), epsilon);
  std::printf("subsequence query (63-day pattern, eps=%.3f):\n", epsilon);
  std::printf("  MBR filter kept %zu of %zu; %zu verified match(es)\n",
              result.candidates.size(), database.num_sequences(),
              result.matches.size());
  for (const SequenceMatch& match : result.matches) {
    std::printf("  company %3zu (distance %.4f), matching window(s):",
                match.sequence_id, match.exact_distance);
    for (const Interval& iv : match.solution_interval) {
      std::printf(" days [%zu, %zu)", iv.begin, iv.end);
    }
    std::printf("\n");
  }

  // 3. Whole matching with the DFT F-index (related work, Section 2):
  //    "whose whole year moved most like company 42's?"
  WholeMatchingIndex findex(days, /*num_coefficients=*/4);
  for (const Sequence& series : prices) findex.Add(series);
  double eps_whole = 0.25;
  std::vector<size_t> similar = findex.Search(prices[42].View(), eps_whole);
  std::printf("\nwhole-year matching (F-index, eps=%.2f): %zu compan%s\n",
              eps_whole, similar.size(), similar.size() == 1 ? "y" : "ies");
  const std::vector<size_t> candidates =
      findex.SearchCandidates(prices[42].View(), eps_whole);
  std::printf("  DFT filter kept %zu of %zu series before verification\n",
              candidates.size(), findex.size());

  // 4. The sliding-window embedding of FRM: a 1-d series becomes a
  //    w-dimensional sequence; shown here for completeness.
  const Sequence embedded = SlidingWindowEmbed(prices[42].View(), 5);
  std::printf("\nsliding-window embedding: %zu days -> %zu points of "
              "dimension %zu\n",
              days, embedded.size(), embedded.dim());

  // 5. FRM subsequence matching (the 1-d ancestor of the paper's method):
  //    DFT feature trails, MBR-partitioned and indexed.
  FrmIndex frm(/*window=*/16, /*num_coefficients=*/3);
  for (const Sequence& series : prices) frm.Add(series);
  const std::vector<size_t> frm_hits = frm.Search(pattern.View(), 0.1);
  std::printf("\nFRM subsequence matching (rss distance, eps=0.1): "
              "%zu compan%s, %zu feature MBRs indexed\n",
              frm_hits.size(), frm_hits.size() == 1 ? "y" : "ies",
              frm.total_mbrs());

  // 6. Dynamic time warping: "which company's year tracks company 42's,
  //    allowing local accelerations?" — the related work's elastic
  //    distance, usable for re-ranking the index's candidates.
  size_t best_company = 0;
  double best_dtw = 1e300;
  for (size_t c = 0; c < prices.size(); ++c) {
    if (c == 42) continue;
    DtwOptions dtw_options;
    dtw_options.window = 10;  // Sakoe-Chiba band: at most 10 days of warp
    const double d = NormalizedDtwDistance(prices[42].View(),
                                           prices[c].View(), dtw_options);
    if (d < best_dtw) {
      best_dtw = d;
      best_company = c;
    }
  }
  std::printf("\nclosest company to 42 under banded DTW: company %zu "
              "(normalized warp cost %.4f)\n",
              best_company, best_dtw);
  return 0;
}
