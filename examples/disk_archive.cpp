// Disk archive: the persistence path a production deployment would use.
//
// An archive of video feature sequences is built once, saved as a single
// page file (sequence store + partition catalog + paged R-tree), and then
// queried cold through a small LRU buffer pool — so the cost of every query
// is visible in page misses, the "disk accesses" the paper's cost model
// estimates.

#include <cstdio>
#include <string>

#include "core/search.h"
#include "gen/video.h"
#include "storage/disk_database.h"
#include "util/random.h"

int main() {
  using namespace mdseq;
  const std::string path = "/tmp/mdseq_disk_archive_example.db";

  // 1. Ingest: build the in-memory database and persist it.
  Rng rng(77);
  SequenceDatabase staging(/*dim=*/3);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 120; ++i) {
    const size_t frames = static_cast<size_t>(rng.UniformInt(150, 400));
    corpus.push_back(GenerateVideoSequence(frames, VideoOptions(), &rng));
    staging.Add(corpus.back());
  }
  if (!DiskDatabase::Save(staging, path)) {
    std::fprintf(stderr, "failed to save archive\n");
    return 1;
  }
  std::printf("archive saved: %zu streams, %zu frames, %zu MBRs -> %s\n\n",
              staging.num_sequences(), staging.total_points(),
              staging.total_mbrs(), path.c_str());

  // 2. Reopen cold with a deliberately small pool (64 pages = 256 KiB) and
  //    run a clip query end to end.
  DiskDatabase archive(path, /*pool_pages=*/64);
  if (!archive.valid()) {
    std::fprintf(stderr, "failed to open archive\n");
    return 1;
  }
  const Sequence query = corpus[33].Slice(50, 120).Materialize();
  const double epsilon = 0.08;

  archive.mutable_pool()->ResetStats();
  const SearchResult result = archive.SearchVerified(query.View(), epsilon);
  std::printf("query: %zu-frame clip, eps = %.2f\n", query.size(), epsilon);
  std::printf("candidates %zu -> verified matches %zu\n",
              result.candidates.size(), result.matches.size());
  for (const SequenceMatch& match : result.matches) {
    std::printf("  stream %3zu (distance %.4f), play ranges:",
                match.sequence_id, match.exact_distance);
    for (const Interval& iv : match.solution_interval) {
      std::printf(" [%zu, %zu)", iv.begin, iv.end);
    }
    std::printf("\n");
  }
  std::printf("\ncold query cost: %llu page misses (4 KiB each), "
              "%llu pool hits\n",
              static_cast<unsigned long long>(archive.pool().misses()),
              static_cast<unsigned long long>(archive.pool().hits()));

  // 3. The same query warm: the pool now holds the touched pages.
  archive.mutable_pool()->ResetStats();
  archive.SearchVerified(query.View(), epsilon);
  std::printf("warm query cost: %llu page misses, %llu pool hits\n",
              static_cast<unsigned long long>(archive.pool().misses()),
              static_cast<unsigned long long>(archive.pool().hits()));

  std::remove(path.c_str());
  return 0;
}
