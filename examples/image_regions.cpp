// Image region search: the paper's second data model (Section 1).
//
// "An image is segmented to a number of regions that can be ordered
//  appropriately, based on space filling curves such as the Z-curve ...
//  This ordering forms a series of regions, each of which is represented by
//  a vector of multiple feature values of a region."
//
// This example synthesizes segmented images (gen/image.h), orders the
// regions along the Hilbert curve, and searches the resulting
// multidimensional sequences: "Find all images in a database that contain
// regions similar to regions of a given image."

#include <cstdio>
#include <vector>

#include "core/search.h"
#include "gen/image.h"
#include "geom/space_filling.h"
#include "util/random.h"

int main() {
  using namespace mdseq;
  Rng rng(31337);
  const ImageOptions image_options;  // 8x8 regions, 3-6 color blobs
  const CurveKind curve = CurveKind::kHilbert;

  // 1. Database of 300 images as Hilbert-ordered region sequences. Region
  //    runs along the curve stay spatially coherent, so the MCOST
  //    partitioner groups nearby regions into tight MBRs.
  DatabaseOptions options;
  options.partitioning.max_points = 16;
  SequenceDatabase database(/*dim=*/3, options);
  std::vector<RegionGrid> images;
  for (int i = 0; i < 300; ++i) {
    images.push_back(SynthesizeImage(image_options, &rng));
    database.Add(RegionsToSequence(images.back(), curve));
  }
  std::printf("database: %zu images, %zu region descriptors, %zu MBRs\n\n",
              database.num_sequences(), database.total_points(),
              database.total_mbrs());

  // 2. Query: the curve-ordered upper-left quadrant of image 123 — "find
  //    images containing a region patch like this one". Along the Hilbert
  //    curve the first quadrant is a contiguous prefix of the sequence.
  const size_t quadrant = image_options.side * image_options.side / 4;
  const Sequence query = RegionsToSequence(images[123], curve)
                             .Slice(0, quadrant)
                             .Materialize();
  const double epsilon = 0.03;

  SimilaritySearch engine(&database);
  const SearchResult result = engine.SearchVerified(query.View(), epsilon);
  std::printf("query: %zu-region patch of image 123, eps = %.2f\n",
              query.size(), epsilon);
  std::printf("MBR filter kept %zu of %zu images; %zu verified match(es):\n",
              result.candidates.size(), database.num_sequences(),
              result.matches.size());
  for (const SequenceMatch& match : result.matches) {
    std::printf("  image %3zu (distance %.4f), matching region run(s):",
                match.sequence_id, match.exact_distance);
    for (const Interval& iv : match.solution_interval) {
      std::printf(" [%zu, %zu)", iv.begin, iv.end);
    }
    std::printf("\n");
  }
  std::printf("\nimage 123 itself %s found, as it must be.\n",
              [&] {
                for (const SequenceMatch& m : result.matches) {
                  if (m.sequence_id == 123) return "was";
                }
                return "was NOT";
              }());
  return 0;
}
