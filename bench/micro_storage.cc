// Microbenchmarks of the storage substrate: page file I/O, buffer pool
// fetches (hit vs miss), the paged R-tree against the in-memory tree, and
// paged sequence reads.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "gen/fractal.h"
#include "index/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/paged_rtree.h"
#include "storage/sequence_store.h"
#include "util/random.h"

namespace {

using namespace mdseq;

std::string TempPath(const char* name) {
  return std::string("/tmp/mdseq_micro_") + name;
}

std::vector<IndexEntry> MakeEntries(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<IndexEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Point low{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    Point high = low;
    for (double& v : high) v += 0.03 * rng.Uniform();
    entries.push_back(IndexEntry{Mbr(low, high), i});
  }
  return entries;
}

void BM_PageFileWrite(benchmark::State& state) {
  const std::string path = TempPath("write.db");
  PageFile file;
  file.Create(path);
  Page page;
  std::fill(std::begin(page.data), std::end(page.data), uint8_t{42});
  const PageId id = file.Allocate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(file.Write(id, page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPageSize));
  file.Close();
  std::remove(path.c_str());
}
BENCHMARK(BM_PageFileWrite);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  const std::string path = TempPath("hit.db");
  PageFile file;
  file.Create(path);
  BufferPool pool(&file, 8);
  const PageId id = pool.Allocate().id();
  for (auto _ : state) {
    PageHandle handle = pool.Fetch(id);
    benchmark::DoNotOptimize(handle.page().data[0]);
  }
  file.Close();
  std::remove(path.c_str());
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_BufferPoolFetchMiss(benchmark::State& state) {
  const std::string path = TempPath("miss.db");
  PageFile file;
  file.Create(path);
  BufferPool pool(&file, 1);
  const PageId a = pool.Allocate().id();
  const PageId b = pool.Allocate().id();
  // Alternating fetches in a 1-frame pool miss every time.
  bool flip = false;
  for (auto _ : state) {
    PageHandle handle = pool.Fetch(flip ? a : b);
    flip = !flip;
    benchmark::DoNotOptimize(handle.page().data[0]);
  }
  file.Close();
  std::remove(path.c_str());
}
BENCHMARK(BM_BufferPoolFetchMiss);

void BM_PagedRTreeRangeSearch(benchmark::State& state) {
  const std::string path = TempPath("ptree.db");
  {
    PageFile file;
    file.Create(path);
    PagedRTree::Build(3, MakeEntries(20000, 1), &file);
  }
  PageFile file;
  file.Open(path);
  BufferPool pool(&file, static_cast<size_t>(state.range(0)));
  PagedRTree tree(3, &pool, file);
  Rng rng(2);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    const Mbr query = Mbr::FromPoint(
        Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    tree.RangeSearch(query, 0.05, &out);
    benchmark::DoNotOptimize(out.size());
  }
  file.Close();
  std::remove(path.c_str());
}
BENCHMARK(BM_PagedRTreeRangeSearch)->Arg(4)->Arg(512);

void BM_InMemoryRTreeRangeSearch(benchmark::State& state) {
  RStarTree tree = RStarTree::BulkLoad(3, MakeEntries(20000, 1));
  Rng rng(2);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    const Mbr query = Mbr::FromPoint(
        Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    tree.RangeSearch(query, 0.05, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_InMemoryRTreeRangeSearch);

void BM_SequenceStoreRead(benchmark::State& state) {
  const std::string path = TempPath("store.db");
  {
    Rng rng(3);
    std::vector<Sequence> corpus;
    for (int i = 0; i < 100; ++i) {
      corpus.push_back(GenerateFractalSequence(256, FractalOptions(),
                                               &rng));
    }
    PageFile file;
    file.Create(path);
    SequenceStore::Write(corpus, &file);
  }
  PageFile file;
  file.Open(path);
  BufferPool pool(&file, static_cast<size_t>(state.range(0)));
  SequenceStore store(&pool, file);
  Rng rng(4);
  for (auto _ : state) {
    const size_t id = static_cast<size_t>(rng.UniformInt(0, 99));
    benchmark::DoNotOptimize(store.Read(id));
  }
  file.Close();
  std::remove(path.c_str());
}
BENCHMARK(BM_SequenceStoreRead)->Arg(4)->Arg(256);

}  // namespace
