// QPS scaling of the concurrent query engine: the same batch of similarity
// queries pushed through worker pools of 1/2/4/8 threads against one
// shared in-memory database, plus the overload policies under a deliberate
// flood. Items/s is queries per second end-to-end (submit -> future).
//
//   ./micro_engine                      # full sweep
//   ./micro_engine --benchmark_filter=EngineQps
//
// The acceptance bar for the subsystem is >= 3x items/s at threads:8 vs
// threads:1 on this workload.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "engine/query_engine.h"
#include "eval/experiment.h"

namespace mdseq {
namespace {

// One shared workload for every benchmark: building it dominates startup,
// not measurement. Sized so a single query costs real Phase-2 + Phase-3
// work (hundreds of microseconds) — the regime the executor is for.
const Workload& SharedWorkload() {
  static const Workload* workload = [] {
    WorkloadConfig config;
    config.kind = DataKind::kSynthetic;
    config.num_sequences = 400;
    config.min_length = 56;
    config.max_length = 384;
    config.num_queries = 64;
    config.seed = 42;
    return new Workload(BuildWorkload(config));
  }();
  return *workload;
}

void BM_EngineQps(benchmark::State& state) {
  const Workload& workload = SharedWorkload();
  EngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.queue_capacity = 4096;
  QueryEngine engine(workload.database.get(), options);

  QueryOptions query_options;
  query_options.epsilon = 0.12;

  size_t processed = 0;
  for (auto _ : state) {
    std::vector<std::future<QueryOutcome>> futures;
    futures.reserve(workload.queries.size());
    for (const Sequence& q : workload.queries) {
      futures.push_back(engine.Submit(q, query_options));
    }
    for (auto& f : futures) {
      benchmark::DoNotOptimize(f.get());
    }
    processed += workload.queries.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(processed));
  const EngineStats stats = engine.stats();
  state.counters["p50_us"] =
      benchmark::Counter(static_cast<double>(stats.p50_latency_us));
  state.counters["p99_us"] =
      benchmark::Counter(static_cast<double>(stats.p99_latency_us));
}
BENCHMARK(BM_EngineQps)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Batch API: same fan-out through SubmitBatch.
void BM_EngineSubmitBatch(benchmark::State& state) {
  const Workload& workload = SharedWorkload();
  EngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.queue_capacity = 4096;
  QueryEngine engine(workload.database.get(), options);

  QueryOptions query_options;
  query_options.epsilon = 0.12;

  size_t processed = 0;
  for (auto _ : state) {
    auto futures = engine.SubmitBatch(workload.queries, query_options);
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
    processed += workload.queries.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(processed));
}
BENCHMARK(BM_EngineSubmitBatch)
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Overload behavior: a tiny queue flooded far past capacity. Throughput is
// not the point; the counters show how each policy sheds or absorbs load.
void BM_EngineOverload(benchmark::State& state) {
  const Workload& workload = SharedWorkload();
  const OverloadPolicy policy =
      static_cast<OverloadPolicy>(state.range(0));
  EngineOptions options;
  options.num_threads = 2;
  options.queue_capacity = 8;
  options.policy = policy;
  QueryEngine engine(workload.database.get(), options);

  QueryOptions query_options;
  query_options.epsilon = 0.12;

  for (auto _ : state) {
    std::vector<std::future<QueryOutcome>> futures;
    futures.reserve(4 * workload.queries.size());
    for (int burst = 0; burst < 4; ++burst) {
      for (const Sequence& q : workload.queries) {
        futures.push_back(engine.Submit(q, query_options));
      }
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  const EngineStats stats = engine.stats();
  state.counters["served"] =
      benchmark::Counter(static_cast<double>(stats.served));
  state.counters["rejected"] =
      benchmark::Counter(static_cast<double>(stats.rejected));
  state.counters["shed"] =
      benchmark::Counter(static_cast<double>(stats.shed));
}
BENCHMARK(BM_EngineOverload)
    ->Arg(static_cast<int>(OverloadPolicy::kBlock))
    ->Arg(static_cast<int>(OverloadPolicy::kReject))
    ->Arg(static_cast<int>(OverloadPolicy::kShedOldest))
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdseq
