// Ablation (substrate): disk-resident index pages through an LRU buffer
// pool. The paper's cost model counts disk accesses per MBR; this harness
// makes that cost concrete by storing the subsequence MBRs of a real
// workload in a paged, bulk-loaded R-tree and measuring actual page misses
// per Phase-2 query as the pool grows.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "core/partitioning.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "figure_common.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/disk_database.h"
#include "storage/paged_rtree.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Ablation: paged index + LRU buffer pool",
      "the disk-access cost the paper's MCOST estimates; misses shrink "
      "toward the tree height as the pool grows");

  WorkloadConfig config =
      bench::ConfigFromFlags(flags, DataKind::kVideo, 1408);
  config.num_queries = flags.GetSize("queries", 20);
  const Workload workload = BuildWorkload(config);
  const SequenceDatabase& db = *workload.database;

  // Collect every subsequence MBR the database indexed.
  std::vector<IndexEntry> entries;
  for (size_t id = 0; id < db.num_sequences(); ++id) {
    const Partition& partition = db.partition(id);
    for (size_t ordinal = 0; ordinal < partition.size(); ++ordinal) {
      entries.push_back(IndexEntry{partition[ordinal].mbr,
                                   SequenceDatabase::PackEntry(id, ordinal)});
    }
  }

  const std::string path = flags.GetString("file", "/tmp/mdseq_paged.db");
  {
    PageFile file;
    if (!file.Create(path) || !PagedRTree::Build(3, entries, &file)) {
      std::fprintf(stderr, "failed to build paged index at %s\n",
                   path.c_str());
      return 1;
    }
  }
  PageFile file;
  if (!file.Open(path)) {
    std::fprintf(stderr, "failed to reopen %s\n", path.c_str());
    return 1;
  }
  std::printf("paged index: %zu MBRs in %u pages of %zu bytes "
              "(fanout %zu)\n\n",
              entries.size(), file.page_count(), kPageSize,
              PagedRTree::PageCapacity(3));

  // Phase-2 style queries: every query MBR probes the index at eps.
  const double epsilon = flags.GetDouble("eps", 0.10);
  std::vector<Mbr> probes;
  for (const Sequence& query : workload.queries) {
    for (const SequenceMbr& piece :
         PartitionSequence(query.View(), db.options().partitioning)) {
      probes.push_back(piece.mbr);
    }
  }

  TextTable table({"pool pages", "pool KiB", "hit rate", "misses/query",
                   "file reads"});
  for (size_t pool_pages : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
    const uint64_t reads_before = file.reads();
    BufferPool pool(&file, pool_pages);
    PagedRTree tree(3, &pool, file);
    pool.ResetStats();
    std::vector<uint64_t> out;
    for (const Mbr& probe : probes) {
      out.clear();
      tree.RangeSearch(probe, epsilon, &out);
    }
    const double total = static_cast<double>(pool.hits() + pool.misses());
    char pages[16], kib[16], rate[16], mpq[16], reads[24];
    std::snprintf(pages, sizeof(pages), "%zu", pool_pages);
    std::snprintf(kib, sizeof(kib), "%zu", pool_pages * kPageSize / 1024);
    std::snprintf(rate, sizeof(rate), "%.3f",
                  total > 0 ? pool.hits() / total : 0.0);
    std::snprintf(mpq, sizeof(mpq), "%.1f",
                  static_cast<double>(pool.misses()) / probes.size());
    std::snprintf(reads, sizeof(reads), "%llu",
                  static_cast<unsigned long long>(file.reads() -
                                                  reads_before));
    table.AddRow({pages, kib, rate, mpq, reads});
  }
  std::printf("at eps = %.2f, %zu probe MBRs from %zu queries:\n", epsilon,
              probes.size(), workload.queries.size());
  table.Print();
  std::remove(path.c_str());

  // Part 2: the fully disk-resident database (index + partitions +
  // sequences in one file), running complete verified queries. Misses now
  // include the refinement step's sequence reads.
  const std::string db_path =
      flags.GetString("dbfile", "/tmp/mdseq_disk.db");
  if (!DiskDatabase::Save(db, db_path)) {
    std::fprintf(stderr, "failed to save disk database to %s\n",
                 db_path.c_str());
    return 1;
  }
  std::printf("\ndisk database: full verified queries (filter + refine):\n");
  TextTable full({"pool pages", "hit rate", "misses/query", "matches/query"});
  for (size_t pool_pages : {16u, 64u, 256u, 1024u, 4096u}) {
    DiskDatabase disk(db_path, pool_pages);
    if (!disk.valid()) {
      std::fprintf(stderr, "failed to open %s\n", db_path.c_str());
      return 1;
    }
    disk.mutable_pool()->ResetStats();
    size_t matches = 0;
    for (const Sequence& query : workload.queries) {
      matches += disk.SearchVerified(query.View(), epsilon).matches.size();
    }
    const BufferPool& pool = disk.pool();
    const double total = static_cast<double>(pool.hits() + pool.misses());
    char pages[16], rate[16], mpq[16], mq[16];
    std::snprintf(pages, sizeof(pages), "%zu", pool_pages);
    std::snprintf(rate, sizeof(rate), "%.3f",
                  total > 0 ? pool.hits() / total : 0.0);
    std::snprintf(mpq, sizeof(mpq), "%.1f",
                  static_cast<double>(pool.misses()) /
                      workload.queries.size());
    std::snprintf(mq, sizeof(mq), "%.1f",
                  static_cast<double>(matches) / workload.queries.size());
    full.AddRow({pages, rate, mpq, mq});
  }
  full.Print();
  std::remove(db_path.c_str());
  return 0;
}
