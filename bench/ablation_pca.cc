// Ablation (extension): filtering in a PCA-reduced space.
//
// The paper's pre-processing step reduces high-dimensional features before
// indexing. Projection onto an orthonormal basis is a contraction, so the
// whole lower-bound chain (Dmbr/Dnorm in reduced space <= reduced distance
// <= original distance) survives and filtering on reduced sequences keeps
// the no-false-dismissal guarantee — at the price of more false hits. This
// harness quantifies that trade on the video workload: candidates and
// verified matches per query when the index lives in 1-, 2-, or 3-d.

#include <cstdio>
#include <vector>

#include "bench_flags.h"
#include "core/distance.h"
#include "core/search.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "figure_common.h"
#include "ts/pca.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Ablation: PCA-reduced filtering (extension)",
      "fewer index dimensions -> cheaper index, looser bound; correctness "
      "(no false dismissal) must hold at every dimensionality");

  WorkloadConfig config =
      bench::ConfigFromFlags(flags, DataKind::kVideo, 400);
  config.num_queries = flags.GetSize("queries", 10);
  const Workload workload = BuildWorkload(config);
  const SequenceDatabase& full_db = *workload.database;
  const double epsilon = flags.GetDouble("eps", 0.15);

  // Fit the model on the stored corpus.
  std::vector<Sequence> corpus;
  for (size_t id = 0; id < full_db.num_sequences(); ++id) {
    corpus.push_back(full_db.sequence(id));
  }

  TextTable table({"index dims", "variance kept", "cand/query",
                   "true matches", "false dismissals"});
  for (size_t target_dim : {1u, 2u, 3u}) {
    const PcaModel model = PcaModel::Fit(corpus, target_dim);
    SequenceDatabase reduced_db(target_dim);
    for (const Sequence& s : corpus) {
      reduced_db.Add(model.ProjectSequence(s.View()));
    }
    SimilaritySearch engine(&reduced_db);

    size_t candidates = 0;
    size_t true_matches = 0;
    size_t dismissals = 0;
    for (const Sequence& query : workload.queries) {
      const Sequence reduced_query = model.ProjectSequence(query.View());
      const SearchResult result =
          engine.Search(reduced_query.View(), epsilon);
      candidates += result.matches.size();
      // Verify in the ORIGINAL space; count the truly similar sequences
      // and any that the reduced filter failed to keep (must be zero).
      std::vector<bool> kept(corpus.size(), false);
      for (const SequenceMatch& m : result.matches) {
        kept[m.sequence_id] = true;
      }
      for (size_t id = 0; id < corpus.size(); ++id) {
        if (SequenceDistance(query.View(), corpus[id].View()) <= epsilon) {
          ++true_matches;
          if (!kept[id]) ++dismissals;
        }
      }
    }
    double variance_kept = 0.0;
    double variance_total = 0.0;
    const PcaModel full_model = PcaModel::Fit(corpus, 3);
    for (size_t i = 0; i < 3; ++i) {
      variance_total += full_model.explained_variance()[i];
      if (i < target_dim) {
        variance_kept += full_model.explained_variance()[i];
      }
    }
    char dims[16], var[16], cand[16], tm[16], fd[24];
    std::snprintf(dims, sizeof(dims), "%zu", target_dim);
    std::snprintf(var, sizeof(var), "%.3f", variance_kept / variance_total);
    std::snprintf(cand, sizeof(cand), "%.1f",
                  static_cast<double>(candidates) /
                      workload.queries.size());
    std::snprintf(tm, sizeof(tm), "%.1f",
                  static_cast<double>(true_matches) /
                      workload.queries.size());
    std::snprintf(fd, sizeof(fd), "%zu", dismissals);
    table.AddRow({dims, var, cand, tm, fd});
  }
  std::printf("video data, %zu sequences, eps = %.2f:\n",
              full_db.num_sequences(), epsilon);
  table.Print();
  std::printf("\n'false dismissals' must be 0 at every dimensionality.\n");
  return 0;
}
