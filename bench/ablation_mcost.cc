// Ablation: the MCOST cost function of the partitioning algorithm.
//
// The paper adopts side growth Qk + eps = 0.3 "since it demonstrates the
// best partitioning by an extensive experiment", and its printed formula is
// ambiguous between FRM's Minkowski volume and an additive form (see
// DESIGN.md). This harness sweeps the growth value under both cost models
// and reports partition granularity and pruning quality, so both the
// adopted constant and the ambiguity can be checked.

#include <cstdio>
#include <vector>

#include "bench_flags.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Ablation: MCOST side growth and cost model",
      "growth 0.3 chosen by the authors; conclusions should be flat across "
      "the cost-model reading");

  const double eval_eps = flags.GetDouble("eps", 0.20);
  TextTable table({"model", "growth", "MBRs/seq", "pts/MBR", "PR(Dmbr)",
                   "PR(Dnorm)", "recall", "nodes"});

  for (const auto model : {PartitioningOptions::CostModel::kMinkowskiVolume,
                           PartitioningOptions::CostModel::kAdditive}) {
    for (double growth : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      WorkloadConfig config =
          bench::ConfigFromFlags(flags, DataKind::kSynthetic, 400);
      config.num_queries = flags.GetSize("queries", 10);
      config.database.partitioning.cost_model = model;
      config.database.partitioning.side_growth = growth;
      const Workload workload = BuildWorkload(config);

      SweepOptions options;
      options.measure_time = false;
      const std::vector<SweepRow> rows = RunThresholdSweep(
          *workload.database, workload.queries, {eval_eps}, options);
      const SweepRow& row = rows[0];
      char growth_str[16];
      std::snprintf(growth_str, sizeof(growth_str), "%.1f", growth);
      char mbrs_str[32];
      std::snprintf(
          mbrs_str, sizeof(mbrs_str), "%.1f",
          static_cast<double>(workload.database->total_mbrs()) /
              workload.database->num_sequences());
      char pts_str[32];
      std::snprintf(
          pts_str, sizeof(pts_str), "%.1f",
          static_cast<double>(workload.database->total_points()) /
              workload.database->total_mbrs());
      char pr1[16], pr2[16], rc[16], nodes[16];
      std::snprintf(pr1, sizeof(pr1), "%.3f", row.pr_dmbr);
      std::snprintf(pr2, sizeof(pr2), "%.3f", row.pr_dnorm);
      std::snprintf(rc, sizeof(rc), "%.3f", row.recall);
      std::snprintf(nodes, sizeof(nodes), "%.0f", row.avg_node_accesses);
      table.AddRow({model == PartitioningOptions::CostModel::kMinkowskiVolume
                        ? "volume"
                        : "additive",
                    growth_str, mbrs_str, pts_str, pr1, pr2, rc, nodes});
    }
  }
  std::printf("At eps = %.2f:\n", eval_eps);
  table.Print();
  return 0;
}
