// Ablation (substrate): LRU versus Clock page replacement under the
// index's real access pattern. Clock is the cheap approximation classic
// systems shipped; this measures how much pruning-phase locality it gives
// up at each pool size.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "core/partitioning.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "figure_common.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/paged_rtree.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Ablation: LRU vs Clock page replacement",
      "Clock approximates LRU; miss rates should track closely across pool "
      "sizes");

  WorkloadConfig config =
      bench::ConfigFromFlags(flags, DataKind::kVideo, 1408);
  config.num_queries = flags.GetSize("queries", 20);
  const Workload workload = BuildWorkload(config);
  const SequenceDatabase& db = *workload.database;

  std::vector<IndexEntry> entries;
  for (size_t id = 0; id < db.num_sequences(); ++id) {
    const Partition& partition = db.partition(id);
    for (size_t ordinal = 0; ordinal < partition.size(); ++ordinal) {
      entries.push_back(IndexEntry{partition[ordinal].mbr,
                                   SequenceDatabase::PackEntry(id, ordinal)});
    }
  }
  const std::string path = flags.GetString("file", "/tmp/mdseq_repl.db");
  {
    PageFile file;
    if (!file.Create(path) || !PagedRTree::Build(3, entries, &file)) {
      std::fprintf(stderr, "failed to build paged index\n");
      return 1;
    }
  }
  PageFile file;
  if (!file.Open(path)) return 1;

  std::vector<Mbr> probes;
  for (const Sequence& query : workload.queries) {
    for (const SequenceMbr& piece :
         PartitionSequence(query.View(), db.options().partitioning)) {
      probes.push_back(piece.mbr);
    }
  }
  const double epsilon = flags.GetDouble("eps", 0.10);

  TextTable table({"pool pages", "LRU misses", "Clock misses",
                   "Clock/LRU"});
  for (size_t pool_pages : {4u, 8u, 16u, 32u, 64u}) {
    uint64_t misses[2] = {0, 0};
    int slot = 0;
    for (auto policy :
         {BufferPool::Policy::kLru, BufferPool::Policy::kClock}) {
      BufferPool pool(&file, pool_pages, policy);
      PagedRTree tree(3, &pool, file);
      pool.ResetStats();
      std::vector<uint64_t> out;
      for (const Mbr& probe : probes) {
        out.clear();
        tree.RangeSearch(probe, epsilon, &out);
      }
      misses[slot++] = pool.misses();
    }
    char pages[16], lru[24], clock[24], ratio[16];
    std::snprintf(pages, sizeof(pages), "%zu", pool_pages);
    std::snprintf(lru, sizeof(lru), "%llu",
                  static_cast<unsigned long long>(misses[0]));
    std::snprintf(clock, sizeof(clock), "%llu",
                  static_cast<unsigned long long>(misses[1]));
    std::snprintf(ratio, sizeof(ratio), "%.3f",
                  misses[0] > 0
                      ? static_cast<double>(misses[1]) / misses[0]
                      : 1.0);
    table.AddRow({pages, lru, clock, ratio});
  }
  std::printf("at eps = %.2f, %zu probes over a %u-page index:\n", epsilon,
              probes.size(), file.page_count());
  table.Print();
  std::remove(path.c_str());
  return 0;
}
