// Microbenchmarks of the scatter-gather serving layer (src/shard): the
// coordinator tax at one shard (fan-out + codec round trip vs calling the
// search directly), threshold-query scaling as the corpus spreads over
// more loopback shards, the distributed SearchNearest cutoff exchange,
// and the raw wire-codec round trip. Per-query fan-out wait and merge
// time ride along as counters so tools/run_benchmarks.sh can report where
// coordinator time goes. Supports `--json` (see json_main.h).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/search.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "json_main.h"
#include "shard/coordinator.h"
#include "shard/message.h"
#include "shard/shard_set.h"
#include "shard/transport.h"
#include "util/random.h"

namespace {

using namespace mdseq;

constexpr double kEpsilon = 0.3;
constexpr size_t kTopK = 10;

struct Fixture {
  std::vector<Sequence> corpus;
  std::unique_ptr<SequenceDatabase> database;
  std::vector<Sequence> queries;
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(17);
    for (size_t i = 0; i < 240; ++i) {
      f->corpus.push_back(GenerateFractalSequence(
          static_cast<size_t>(rng.UniformInt(56, 320)), FractalOptions(),
          &rng));
    }
    f->database = std::make_unique<SequenceDatabase>(f->corpus.front().dim());
    for (const Sequence& s : f->corpus) f->database->Add(s);
    QueryWorkloadOptions workload;
    workload.min_length = 48;
    workload.max_length = 96;
    f->queries = DrawQueries(f->corpus, 8, workload, &rng);
    return f;
  }();
  return *fixture;
}

// Baseline: the unsharded three-phase search the coordinator must match.
void BM_SingleThreshold(benchmark::State& state) {
  Fixture& f = SharedFixture();
  SimilaritySearch search(f.database.get());
  size_t i = 0;
  size_t matches = 0;
  for (auto _ : state) {
    const SearchResult result =
        search.SearchVerified(f.queries[i++ % f.queries.size()].View(),
                              kEpsilon);
    benchmark::DoNotOptimize(matches += result.matches.size());
  }
}

// Threshold fan-out over N loopback shards (every call still round-trips
// the wire codec). Arg = shard count; N=1 isolates the coordinator tax.
void BM_ScatterThreshold(benchmark::State& state) {
  Fixture& f = SharedFixture();
  const size_t shards = static_cast<size_t>(state.range(0));
  const std::unique_ptr<ShardSet> set =
      ShardSet::BuildInMemory(*f.database, shards, PlacementPolicy::kHash);
  LoopbackTransport transport(set->nodes());
  Coordinator coordinator(&transport, set->placement());
  size_t i = 0;
  size_t matches = 0;
  uint64_t fanout_wait_ns = 0;
  uint64_t merge_ns = 0;
  for (auto _ : state) {
    const SearchResult result = coordinator.SearchVerified(
        f.queries[i++ % f.queries.size()].View(), kEpsilon);
    benchmark::DoNotOptimize(matches += result.matches.size());
    fanout_wait_ns += result.stats.fanout_wait_ns;
    merge_ns += result.stats.merge_ns;
  }
  const double queries = static_cast<double>(i > 0 ? i : 1);
  state.counters["fanout_wait_ns_per_query"] =
      static_cast<double>(fanout_wait_ns) / queries;
  state.counters["merge_ns_per_query"] =
      static_cast<double>(merge_ns) / queries;
}

void BM_SingleNearest(benchmark::State& state) {
  Fixture& f = SharedFixture();
  SimilaritySearch search(f.database.get());
  size_t i = 0;
  size_t found = 0;
  for (auto _ : state) {
    const std::vector<SequenceMatch> nearest = search.SearchNearest(
        f.queries[i++ % f.queries.size()].View(), kTopK);
    benchmark::DoNotOptimize(found += nearest.size());
  }
}

// Distributed top-k: epsilon-doubling rounds with the cutoff exchange
// (verification waves re-broadcasting the global k-th best distance).
void BM_ScatterNearest(benchmark::State& state) {
  Fixture& f = SharedFixture();
  const size_t shards = static_cast<size_t>(state.range(0));
  const std::unique_ptr<ShardSet> set =
      ShardSet::BuildInMemory(*f.database, shards, PlacementPolicy::kHash);
  LoopbackTransport transport(set->nodes());
  Coordinator coordinator(&transport, set->placement());
  size_t i = 0;
  size_t found = 0;
  for (auto _ : state) {
    const std::vector<SequenceMatch> nearest = coordinator.SearchNearest(
        f.queries[i++ % f.queries.size()].View(), kTopK);
    benchmark::DoNotOptimize(found += nearest.size());
  }
}

// Wire codec round trip of a representative kSearchVerified response
// (64 matches with intervals) — the per-RPC serialization floor.
void BM_ShardCodec_ResponseRoundTrip(benchmark::State& state) {
  ShardResponse response;
  response.ok = true;
  response.num_sequences = 1000;
  for (uint64_t id = 0; id < 64; ++id) {
    response.candidates.push_back(id);
    ShardMatch match;
    match.local_id = id;
    match.min_dnorm = 0.1 + static_cast<double>(id) * 1e-3;
    match.exact_distance = match.min_dnorm + 0.05;
    match.intervals = {{id, id + 40}, {id + 60, id + 90}};
    response.matches.push_back(match);
  }
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string wire = EncodeShardResponse(response);
    ShardResponse decoded;
    const bool ok = DecodeShardResponse(wire, &decoded);
    benchmark::DoNotOptimize(ok);
    bytes += wire.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

BENCHMARK(BM_SingleThreshold);
BENCHMARK(BM_ScatterThreshold)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_SingleNearest);
BENCHMARK(BM_ScatterNearest)->Arg(1)->Arg(4);
BENCHMARK(BM_ShardCodec_ResponseRoundTrip);

}  // namespace
