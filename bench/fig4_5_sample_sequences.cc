// Reproduces Figures 4 and 5: one sample synthetic (fractal) sequence and
// one sample video feature sequence. The trails are written as CSV for
// external plotting and summarized here by their per-axis extents and mean
// step length — the video trail should be visibly "clustered" (tiny steps
// inside shots) compared to the synthetic one.

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_flags.h"
#include "core/partitioning.h"
#include "gen/fractal.h"
#include "gen/video.h"
#include "geom/point.h"
#include "util/csv.h"
#include "util/random.h"

namespace {

using namespace mdseq;

void Describe(const char* name, const Sequence& s, const std::string& path) {
  CsvWriter csv({"t", "x", "y", "z"});
  for (size_t i = 0; i < s.size(); ++i) {
    csv.AddRow(std::vector<double>{static_cast<double>(i), s[i][0], s[i][1],
                                   s[i][2]});
  }
  const bool written = csv.WriteFile(path);

  double step_sum = 0.0;
  for (size_t i = 1; i < s.size(); ++i) {
    step_sum += PointDistance(s[i - 1], s[i]);
  }
  const Partition partition =
      PartitionSequence(s.View(), PartitioningOptions());
  std::printf("%s: %zu points, mean step %.4f, %zu MCOST pieces%s%s\n", name,
              s.size(), step_sum / (s.size() - 1), partition.size(),
              written ? ", trail written to " : " (CSV write failed: ",
              path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  const size_t length = flags.GetSize("length", 512);
  Rng rng(flags.GetSize("seed", 42));

  std::printf("=== Figures 4-5: sample sequences ===\n");
  std::printf("Paper shows: a wandering synthetic trail (Fig 4) and a "
              "video trail clustered into shots (Fig 5).\n\n");

  const Sequence synthetic =
      GenerateFractalSequence(length, FractalOptions(), &rng);
  Describe("Figure 4 (synthetic)", synthetic, "fig4_synthetic_sequence.csv");

  const Sequence video = GenerateVideoSequence(length, VideoOptions(), &rng);
  Describe("Figure 5 (video)   ", video, "fig5_video_sequence.csv");

  std::printf("\nThe video trail's smaller mean step and piece count per "
              "point reflect the per-shot clustering the paper credits for "
              "video's better pruning.\n");
  return 0;
}
