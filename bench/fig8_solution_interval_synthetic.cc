// Reproduces Figure 8: pruning efficiency and recall of the estimated
// solution interval on synthetic data.
//
// Paper expectation: PR_SI around 60-80% and recall 98-100% across the
// threshold range.

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Figure 8: solution-interval efficiency (synthetic data)",
      "PR_SI 0.60-0.80, Recall 0.98-1.00");

  const WorkloadConfig config =
      bench::ConfigFromFlags(flags, DataKind::kSynthetic, 1600);
  const Workload workload = BuildWorkload(config);
  PrintWorkloadSummary(config, *workload.database, workload.queries);

  SweepOptions options;
  options.measure_time = false;
  options.evaluate_intervals = true;
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, workload.queries, PaperEpsilons(), options);
  PrintSweepRows("Figure 8 (measured):", rows, /*with_time=*/false);
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty() && WriteSweepCsv(csv_path, rows)) {
    std::printf("rows written to %s\n", csv_path.c_str());
  }
  return 0;
}
