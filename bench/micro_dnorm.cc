// Microbenchmarks of the MBR distance metrics (Dmbr, Dnorm) and the full
// three-phase search.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "core/mbr_distance.h"
#include "core/search.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "util/random.h"

namespace {

using namespace mdseq;

struct Fixture {
  SequenceDatabase database{3};
  std::vector<Sequence> corpus;
  Sequence query{3};

  explicit Fixture(size_t sequences) {
    Rng rng(1);
    for (size_t i = 0; i < sequences; ++i) {
      corpus.push_back(GenerateFractalSequence(256, FractalOptions(), &rng));
      database.Add(corpus.back());
    }
    query = DrawQuery(corpus, QueryWorkloadOptions(), &rng);
  }
};

void BM_MbrDistance(benchmark::State& state) {
  const Fixture fixture(2);
  const Mbr& a = fixture.database.partition(0)[0].mbr;
  const Mbr& b = fixture.database.partition(1)[0].mbr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MbrDistance(a, b));
  }
}
BENCHMARK(BM_MbrDistance);

void BM_NormalizedDistanceAllPairs(benchmark::State& state) {
  const Fixture fixture(2);
  const Partition& query_partition =
      PartitionSequence(fixture.query.View(),
                        fixture.database.options().partitioning);
  const Partition& target = fixture.database.partition(0);
  for (auto _ : state) {
    double best = 1e18;
    for (const SequenceMbr& probe : query_partition) {
      const std::vector<double> dmbr =
          ComputeMbrDistances(probe.mbr, target);
      for (size_t j = 0; j < target.size(); ++j) {
        best = std::min(best, NormalizedDistance(probe.count(), target, j,
                                                 dmbr)
                                  .distance);
      }
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_NormalizedDistanceAllPairs);

void BM_FullSearch(benchmark::State& state) {
  const Fixture fixture(static_cast<size_t>(state.range(0)));
  const SimilaritySearch engine(&fixture.database);
  const double epsilon = 0.15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Search(fixture.query.View(), epsilon));
  }
}
BENCHMARK(BM_FullSearch)->Arg(100)->Arg(400);

void BM_Phase2Only(benchmark::State& state) {
  const Fixture fixture(400);
  const SimilaritySearch engine(&fixture.database);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.SearchCandidates(fixture.query.View(), 0.15));
  }
}
BENCHMARK(BM_Phase2Only);

}  // namespace
