// Microbenchmarks of the MBR distance metrics (Dmbr, Dnorm) and the full
// three-phase search. Supports `--json` (see json_main.h); the
// Reference/PrefixSum pairs feed tools/run_benchmarks.sh.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "core/mbr_distance.h"
#include "core/search.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "json_main.h"
#include "util/random.h"
#include "util/simd.h"

namespace {

using namespace mdseq;

struct Fixture {
  SequenceDatabase database{3};
  std::vector<Sequence> corpus;
  Sequence query{3};

  explicit Fixture(size_t sequences) {
    Rng rng(1);
    for (size_t i = 0; i < sequences; ++i) {
      corpus.push_back(GenerateFractalSequence(256, FractalOptions(), &rng));
      database.Add(corpus.back());
    }
    query = DrawQuery(corpus, QueryWorkloadOptions(), &rng);
  }
};

void BM_MbrDistance(benchmark::State& state) {
  const Fixture fixture(2);
  const Mbr& a = fixture.database.partition(0)[0].mbr;
  const Mbr& b = fixture.database.partition(1)[0].mbr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MbrDistance(a, b));
  }
}
BENCHMARK(BM_MbrDistance);

void BM_NormalizedDistanceAllPairs(benchmark::State& state) {
  const Fixture fixture(2);
  const Partition& query_partition =
      PartitionSequence(fixture.query.View(),
                        fixture.database.options().partitioning);
  const Partition& target = fixture.database.partition(0);
  for (auto _ : state) {
    double best = 1e18;
    for (const SequenceMbr& probe : query_partition) {
      const std::vector<double> dmbr =
          ComputeMbrDistances(probe.mbr, target);
      for (size_t j = 0; j < target.size(); ++j) {
        best = std::min(best, NormalizedDistance(probe.count(), target, j,
                                                 dmbr)
                                  .distance);
      }
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_NormalizedDistanceAllPairs);

// The many-MBR worst case of Definition 5: a finely partitioned target
// (state.range(0) MBRs of 4 points each) and a probe covering 128 points,
// so almost every j needs a long window walk. The naive reference
// re-accumulates each window; the prefix-sum context answers each in O(1).
struct ManyMbrFixture {
  Partition target;
  Mbr probe{Point{0.0, 0.0, 0.0}, Point{0.1, 1.0, 1.0}};
  std::vector<double> dmbr;
  size_t probe_count = 128;

  explicit ManyMbrFixture(size_t mbrs) {
    Rng rng(11);
    size_t at = 0;
    for (size_t i = 0; i < mbrs; ++i) {
      const double lo = rng.Uniform();
      const Mbr box(Point{lo, 0.0, 0.0}, Point{lo + 0.01, 1.0, 1.0});
      target.push_back(SequenceMbr{box, at, at + 4});
      at += 4;
    }
    dmbr = ComputeMbrDistances(probe, target);
  }
};

void BM_DnormManyMbrs_Reference(benchmark::State& state) {
  const ManyMbrFixture fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    double best = 1e18;
    for (size_t j = 0; j < fixture.target.size(); ++j) {
      best = std::min(best,
                      ReferenceNormalizedDistance(fixture.probe_count,
                                                  fixture.target, j,
                                                  fixture.dmbr)
                          .distance);
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_DnormManyMbrs_Reference)->Arg(64)->Arg(256);

void BM_DnormManyMbrs_PrefixSum(benchmark::State& state) {
  const ManyMbrFixture fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const DnormContext context =
        MakeDnormContext(fixture.target, fixture.dmbr);
    double best = 1e18;
    for (size_t j = 0; j < fixture.target.size(); ++j) {
      best = std::min(
          best,
          NormalizedDistance(fixture.probe_count, context, j).distance);
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_DnormManyMbrs_PrefixSum)->Arg(64)->Arg(256);

// Scalar vs dispatched prefilter kernel (batched centroid squared
// distances over a dim-major SoA layout, as PrefilterProbe issues it):
// one probe centroid against state.range(0) 4-d target centroids. The
// `simd_level` counter on the dispatched run records which implementation
// actually ran (0 scalar, 1 avx2, 2 neon).
struct PrefilterFixture {
  size_t n;
  size_t dim = 4;
  std::vector<double> center, centers, out;

  explicit PrefilterFixture(size_t count)
      : n(count), center(dim), centers(dim * n), out(n) {
    Rng rng(41);
    for (double& v : center) v = rng.Uniform();
    for (double& v : centers) v = rng.Uniform();
  }
};

void BM_PrefilterKernel_Scalar(benchmark::State& state) {
  PrefilterFixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    simd::SquaredDistBatchScalar(f.center.data(), f.centers.data(), f.n,
                                 f.dim, f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.n));
}
BENCHMARK(BM_PrefilterKernel_Scalar)->Arg(256)->Arg(1024);

void BM_PrefilterKernel_Simd(benchmark::State& state) {
  PrefilterFixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    simd::SquaredDistBatch(f.center.data(), f.centers.data(), f.n, f.dim,
                           f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.n));
  state.counters["simd_level"] =
      static_cast<double>(static_cast<int>(simd::ActiveLevel()));
}
BENCHMARK(BM_PrefilterKernel_Simd)->Arg(256)->Arg(1024);

void BM_FullSearch(benchmark::State& state) {
  const Fixture fixture(static_cast<size_t>(state.range(0)));
  const SimilaritySearch engine(&fixture.database);
  const double epsilon = 0.15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Search(fixture.query.View(), epsilon));
  }
}
BENCHMARK(BM_FullSearch)->Arg(100)->Arg(400);

// Full search with per-phase timings (from SearchStats) surfaced as
// counters, so BENCH_kernels.json records where the time goes.
void BM_FullSearchPhases(benchmark::State& state) {
  const Fixture fixture(200);
  const SimilaritySearch engine(&fixture.database);
  const double epsilon = 0.15;
  uint64_t partition_ns = 0, first_ns = 0, second_ns = 0, nodes = 0;
  uint64_t iterations = 0;
  for (auto _ : state) {
    const SearchResult result = engine.Search(fixture.query.View(), epsilon);
    benchmark::DoNotOptimize(result.matches.size());
    partition_ns += result.stats.partition_ns;
    first_ns += result.stats.first_pruning_ns;
    second_ns += result.stats.second_pruning_ns;
    nodes += result.stats.node_accesses;
    ++iterations;
  }
  const double n = static_cast<double>(iterations ? iterations : 1);
  state.counters["partition_ns"] = static_cast<double>(partition_ns) / n;
  state.counters["first_pruning_ns"] = static_cast<double>(first_ns) / n;
  state.counters["second_pruning_ns"] = static_cast<double>(second_ns) / n;
  state.counters["node_accesses"] = static_cast<double>(nodes) / n;
}
BENCHMARK(BM_FullSearchPhases);

void BM_Phase2Only(benchmark::State& state) {
  const Fixture fixture(400);
  const SimilaritySearch engine(&fixture.database);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.SearchCandidates(fixture.query.View(), 0.15));
  }
}
BENCHMARK(BM_Phase2Only);

}  // namespace
