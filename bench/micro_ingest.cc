// Microbenchmarks of the live ingestion path: append+group-commit
// throughput (points/s, fsyncs per commit), checkpoint cost, and the
// query-latency tax of concurrent ingest — the same SearchVerified
// measured quiescent and under a paced writer, reported with a p99
// counter so tools/run_benchmarks.sh can diff the two. Supports `--json`
// (see json_main.h).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "gen/fractal.h"
#include "ingest/live_database.h"
#include "json_main.h"
#include "util/random.h"

namespace {

using namespace mdseq;

std::string TempDbPath(const char* tag) {
  return "/tmp/mdseq_micro_ingest_" + std::string(tag) + ".db";
}

void RemoveDb(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".wal.new").c_str());
}

std::vector<Sequence> MakeCorpus(size_t count, size_t length,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<Sequence> corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    corpus.push_back(GenerateFractalSequence(length, FractalOptions(), &rng));
  }
  return corpus;
}

// Append + seal + group-commit throughput; arg = sequences per commit.
// counters: points/s via items, fsyncs_per_commit from the WAL stats.
void BM_LiveIngest_CommitEvery(benchmark::State& state) {
  const size_t commit_every = static_cast<size_t>(state.range(0));
  const auto corpus = MakeCorpus(32, 64, 11);
  const std::string path = TempDbPath("throughput");
  int64_t points = 0;
  double fsyncs_per_commit = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    RemoveDb(path);
    LiveDatabase::Create(path, corpus[0].dim());
    state.ResumeTiming();
    {
      LiveDatabase db(path);
      for (size_t s = 0; s < corpus.size(); ++s) {
        const uint64_t id = db.BeginSequence();
        db.AppendPoints(id, corpus[s].View());
        db.SealSequence(id);
        points += static_cast<int64_t>(corpus[s].size());
        if ((s + 1) % commit_every == 0) db.Commit();
      }
      db.Commit();
      const IngestStatus status = db.Status();
      fsyncs_per_commit =
          status.wal_commits > 0
              ? static_cast<double>(status.wal_fsyncs) /
                    static_cast<double>(status.wal_commits)
              : 0.0;
    }
  }
  RemoveDb(path);
  state.SetItemsProcessed(points);
  state.counters["fsyncs_per_commit"] = fsyncs_per_commit;
}
BENCHMARK(BM_LiveIngest_CommitEvery)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Checkpoint cost for a pending tail of `arg` sealed sequences.
void BM_LiveIngest_Checkpoint(benchmark::State& state) {
  const size_t pending = static_cast<size_t>(state.range(0));
  const auto corpus = MakeCorpus(pending, 64, 23);
  const std::string path = TempDbPath("checkpoint");
  for (auto _ : state) {
    state.PauseTiming();
    RemoveDb(path);
    LiveDatabase::Create(path, corpus[0].dim());
    {
      LiveDatabase db(path);
      for (const Sequence& s : corpus) {
        const uint64_t id = db.BeginSequence();
        db.AppendPoints(id, s.View());
        db.SealSequence(id);
      }
      db.Commit();
      state.ResumeTiming();
      db.Checkpoint();
      state.PauseTiming();
    }
    state.ResumeTiming();
  }
  RemoveDb(path);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pending));
}
BENCHMARK(BM_LiveIngest_Checkpoint)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// SearchVerified latency over a populated live database, quiescent or with
// a background writer committing small appends (the read-while-ingest
// shape). The p99_us counter is what BENCH_ingest.json diffs.
void RunQueryLatency(benchmark::State& state, bool ingest_on) {
  const auto corpus = MakeCorpus(64, 96, 31);
  Rng rng(47);
  const Sequence probe = GenerateFractalSequence(32, FractalOptions(), &rng);
  const std::string path =
      TempDbPath(ingest_on ? "query_ingest" : "query_quiet");
  RemoveDb(path);
  LiveDatabase::Create(path, corpus[0].dim());
  LiveDatabase db(path);
  for (const Sequence& s : corpus) {
    const uint64_t id = db.BeginSequence();
    db.AppendPoints(id, s.View());
    db.SealSequence(id);
  }
  db.Commit();
  db.Checkpoint();

  std::atomic<bool> stop{false};
  std::thread writer;
  if (ingest_on) {
    writer = std::thread([&db, &stop] {
      // Trickle points into one open sequence: WAL fsync + snapshot
      // publish churn without unbounded data growth skewing the A/B.
      Rng wrng(53);
      const uint64_t id = db.BeginSequence();
      Sequence span = GenerateFractalSequence(4, FractalOptions(), &wrng);
      while (!stop.load(std::memory_order_acquire)) {
        db.AppendPoints(id, span.View());
        db.Commit();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      db.SealSequence(id);
      db.Commit();
    });
  }

  std::vector<double> latencies_us;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(db.SearchVerified(probe.View(), 1.5));
    const auto t1 = std::chrono::steady_clock::now();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  stop.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();
  RemoveDb(path);

  std::sort(latencies_us.begin(), latencies_us.end());
  const size_t n = latencies_us.size();
  state.counters["p99_us"] =
      n > 0 ? latencies_us[std::min(n - 1, (n * 99) / 100)] : 0.0;
  state.counters["p50_us"] = n > 0 ? latencies_us[n / 2] : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(n));
}

void BM_LiveQuery_Quiescent(benchmark::State& state) {
  RunQueryLatency(state, /*ingest_on=*/false);
}
BENCHMARK(BM_LiveQuery_Quiescent)->Unit(benchmark::kMicrosecond);

void BM_LiveQuery_UnderIngest(benchmark::State& state) {
  RunQueryLatency(state, /*ingest_on=*/true);
}
BENCHMARK(BM_LiveQuery_UnderIngest)->Unit(benchmark::kMicrosecond);

}  // namespace
