// Microbenchmarks of the data generation substrate: fractal sequences,
// rendered video (raster synthesis + feature extraction), segmented images,
// and query extraction.

#include <benchmark/benchmark.h>

#include "gen/fractal.h"
#include "gen/image.h"
#include "gen/query_workload.h"
#include "gen/video.h"
#include "util/random.h"

namespace {

using namespace mdseq;

void BM_FractalSequence(benchmark::State& state) {
  Rng rng(1);
  const auto length = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateFractalSequence(length, FractalOptions(), &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FractalSequence)->Arg(56)->Arg(512);

void BM_VideoStreamRendering(benchmark::State& state) {
  Rng rng(2);
  const auto frames = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateVideoStream(frames, VideoOptions(), &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_VideoStreamRendering)->Arg(128);

void BM_VideoFeatureExtraction(benchmark::State& state) {
  Rng rng(3);
  const VideoStream stream = GenerateVideoStream(256, VideoOptions(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractColorFeatures(stream));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_VideoFeatureExtraction);

void BM_ImageSequence(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateImageSequence(ImageOptions(), CurveKind::kHilbert, &rng));
  }
}
BENCHMARK(BM_ImageSequence);

void BM_DrawQuery(benchmark::State& state) {
  Rng rng(5);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 50; ++i) {
    corpus.push_back(GenerateFractalSequence(256, FractalOptions(), &rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DrawQuery(corpus, QueryWorkloadOptions(), &rng));
  }
}
BENCHMARK(BM_DrawQuery);

}  // namespace
