// Ablation: the key-frame search of the paper's introduction.
//
// "The search by a key frame does not guarantee the correctness since it
// cannot always summarize all the frames of a shot." This harness measures
// those false dismissals against the exact scan, next to the MBR method's
// guaranteed zero.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "baseline/keyframe.h"
#include "baseline/sequential_scan.h"
#include "bench_flags.h"
#include "core/search.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Ablation: key-frame search vs the MBR method",
      "key frames dismiss true matches at tight thresholds; the MBR method "
      "never does (Lemmas 1-3)");

  WorkloadConfig config = bench::ConfigFromFlags(flags, DataKind::kVideo,
                                                 300);
  config.num_queries = flags.GetSize("queries", 20);
  // Short clips (often covering transitions or shot fragments) are what a
  // single key frame per shot fails to summarize.
  config.query.min_length = flags.GetSize("qmin", 8);
  config.query.max_length = flags.GetSize("qmax", 16);
  const Workload workload = BuildWorkload(config);
  PrintWorkloadSummary(config, *workload.database, workload.queries);

  const SequentialScan scan(workload.database.get());
  const KeyframeSearch keyframes(workload.database.get());
  const SimilaritySearch engine(workload.database.get());

  TextTable table({"eps", "relevant", "kf hits", "kf dismissals",
                   "mbr dismissals", "kf retrieved"});
  for (double epsilon : {0.02, 0.05, 0.10, 0.20}) {
    size_t relevant = 0;
    size_t kf_hits = 0;
    size_t kf_misses = 0;
    size_t mbr_misses = 0;
    size_t kf_retrieved = 0;
    for (const Sequence& query : workload.queries) {
      const std::vector<ScanMatch> truth = scan.Search(query.View(),
                                                       epsilon);
      const std::vector<size_t> kf = keyframes.Search(query.View(), epsilon);
      kf_retrieved += kf.size();
      const SearchResult mbr = engine.Search(query.View(), epsilon);
      std::set<size_t> matched;
      for (const SequenceMatch& m : mbr.matches) matched.insert(m.sequence_id);
      for (const ScanMatch& t : truth) {
        ++relevant;
        if (std::find(kf.begin(), kf.end(), t.sequence_id) != kf.end()) {
          ++kf_hits;
        } else {
          ++kf_misses;
        }
        if (!matched.count(t.sequence_id)) ++mbr_misses;
      }
    }
    char eps[16], rel[16], hits[16], miss[16], mbrm[16], ret[16];
    std::snprintf(eps, sizeof(eps), "%.2f", epsilon);
    std::snprintf(rel, sizeof(rel), "%zu", relevant);
    std::snprintf(hits, sizeof(hits), "%zu", kf_hits);
    std::snprintf(miss, sizeof(miss), "%zu", kf_misses);
    std::snprintf(mbrm, sizeof(mbrm), "%zu", mbr_misses);
    std::snprintf(ret, sizeof(ret), "%zu", kf_retrieved);
    table.AddRow({eps, rel, hits, miss, mbrm, ret});
  }
  table.Print();
  std::printf("\n'mbr dismissals' must be 0 at every threshold.\n");
  return 0;
}
