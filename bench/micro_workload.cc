// Microbenchmarks of the workload flight recorder: record encode cost,
// framed append throughput (the per-query price a recording engine pays
// off the search path), the full WorkloadRecorder::Record path, and log
// scan/decode throughput for replay startup. Supports `--json` (see
// json_main.h).

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "engine/workload_recorder.h"
#include "gen/walk.h"
#include "json_main.h"
#include "obs/workload_log.h"
#include "util/random.h"

namespace {

using namespace mdseq;

std::string TempLogPath(const char* tag) {
  return "/tmp/mdseq_micro_workload_" + std::string(tag) + ".mdwl";
}

void RemoveLog(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

// A representative record: a 96-point dim-2 query, populated cascade
// counters, and a 4-shard breakdown (the coordinator case).
WorkloadQueryRecord MakeRecord(uint64_t id) {
  Rng rng(id + 7);
  WalkOptions walk;
  walk.dim = 2;
  WorkloadQueryRecord record;
  record.id = id;
  record.arrival_unix = 1e9 + static_cast<double>(id) * 1e-3;
  record.completion_unix = record.arrival_unix + 5e-3;
  record.epsilon = 0.1;
  record.verified = true;
  record.signature = id * 0x9e3779b97f4a7c15ull;
  record.result_digest = id * 0xc2b2ae3d27d4eb4full;
  record.matches = 3;
  record.stats.node_accesses = 12;
  record.stats.phase2_candidates = 40;
  record.stats.phase3_matches = 6;
  record.stats.dnorm_evaluations = 300;
  record.stats.bytes_read = 1 << 16;
  for (uint32_t shard = 0; shard < 4; ++shard) {
    ShardQueryStats stats;
    stats.shard = shard;
    stats.ok = true;
    stats.digest = id ^ shard;
    stats.stats.dnorm_evaluations = 75;
    record.shards.push_back(stats);
  }
  record.query = GenerateRandomWalk(96, walk, &rng);
  return record;
}

// Flat-codec encode cost per record; bytes_per_record sizes the log.
void BM_WorkloadRecordEncode(benchmark::State& state) {
  const WorkloadQueryRecord record = MakeRecord(1);
  size_t bytes = 0;
  for (auto _ : state) {
    const std::vector<uint8_t> payload = EncodeWorkloadRecord(record);
    bytes = payload.size();
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["bytes_per_record"] =
      benchmark::Counter(static_cast<double>(bytes));
}

// Encode + CRC-frame + buffered append: the full per-recorded-query cost.
void BM_WorkloadRecordAppend(benchmark::State& state) {
  const WorkloadQueryRecord record = MakeRecord(1);
  const std::string path = TempLogPath("append");
  RemoveLog(path);
  obs::WorkloadLogWriter writer;
  writer.Open(path);
  for (auto _ : state) {
    const std::vector<uint8_t> payload = EncodeWorkloadRecord(record);
    writer.Append(kWorkloadQueryFrame, payload.data(), payload.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(
      static_cast<int64_t>(writer.bytes_written()));
  writer.Close();
  RemoveLog(path);
}

// The recorder entry point the engine calls per completion: sampling,
// encode, append, and the /debug/workload ring mirror, under its mutex.
void BM_WorkloadRecorderRecord(benchmark::State& state) {
  const WorkloadQueryRecord record = MakeRecord(1);
  const std::string path = TempLogPath("recorder");
  RemoveLog(path);
  WorkloadRecorder::Options options;
  options.path = path;
  WorkloadRecorder recorder(options);
  for (auto _ : state) {
    recorder.Record(record);
  }
  state.SetItemsProcessed(state.iterations());
  RemoveLog(path);
}

// Scan + CRC-verify + decode a log of `range(0)` records: replay startup.
void BM_WorkloadLogScan(benchmark::State& state) {
  const size_t count = static_cast<size_t>(state.range(0));
  const std::string path = TempLogPath("scan");
  RemoveLog(path);
  {
    obs::WorkloadLogWriter writer;
    writer.Open(path);
    for (size_t i = 0; i < count; ++i) {
      const std::vector<uint8_t> payload =
          EncodeWorkloadRecord(MakeRecord(i));
      writer.Append(kWorkloadQueryFrame, payload.data(), payload.size());
    }
  }
  size_t decoded = 0;
  for (auto _ : state) {
    const WorkloadReadResult result = ReadWorkloadRecords(path);
    decoded = result.records.size();
    benchmark::DoNotOptimize(decoded);
  }
  if (decoded != count) state.SkipWithError("scan lost records");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(count));
  RemoveLog(path);
}

BENCHMARK(BM_WorkloadRecordEncode);
BENCHMARK(BM_WorkloadRecordAppend);
BENCHMARK(BM_WorkloadRecorderRecord);
BENCHMARK(BM_WorkloadLogScan)->Arg(256)->Arg(1024);

}  // namespace
