// Microbenchmarks of the distance kernels (point distance, Dmean, window
// profiles, full sequence distance). Supports `--json` (see json_main.h);
// the bounded/unbounded profile pair feeds tools/run_benchmarks.sh.

#include <limits>

#include <benchmark/benchmark.h>

#include "core/distance.h"
#include "gen/fractal.h"
#include "json_main.h"
#include "util/random.h"
#include "util/simd.h"

namespace {

using namespace mdseq;

Sequence MakeSequence(size_t length, uint64_t seed) {
  Rng rng(seed);
  return GenerateFractalSequence(length, FractalOptions(), &rng);
}

void BM_PointDistance(benchmark::State& state) {
  const Sequence s = MakeSequence(2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PointDistance(s[0], s[1]));
  }
}
BENCHMARK(BM_PointDistance);

void BM_MeanDistance(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Sequence a = MakeSequence(n, 2);
  const Sequence b = MakeSequence(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeanDistance(a.View(), b.View()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MeanDistance)->Arg(16)->Arg(64)->Arg(256);

void BM_WindowDistanceProfile(benchmark::State& state) {
  const size_t query_length = static_cast<size_t>(state.range(0));
  const Sequence query = MakeSequence(query_length, 4);
  const Sequence data = MakeSequence(512, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WindowDistanceProfile(query.View(),
                                                   data.View()));
  }
}
BENCHMARK(BM_WindowDistanceProfile)->Arg(16)->Arg(64)->Arg(256);

// The bounded profile against the unbounded one, on a query shifted far
// from the data so every alignment is abandoned after a handful of points
// (the verification common case: most candidates don't qualify).
Sequence MakeShiftedQuery(size_t length, uint64_t seed, double shift) {
  const Sequence raw = MakeSequence(length, seed);
  Sequence query(raw.dim());
  for (size_t i = 0; i < raw.size(); ++i) {
    Point p(raw.dim());
    for (size_t t = 0; t < raw.dim(); ++t) p[t] = raw[i][t] + shift;
    query.Append(p);
  }
  return query;
}

void BM_WindowProfile_Unbounded(benchmark::State& state) {
  const Sequence query =
      MakeShiftedQuery(static_cast<size_t>(state.range(0)), 4, 5.0);
  const Sequence data = MakeSequence(512, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WindowDistanceProfile(query.View(),
                                                   data.View()));
  }
}
BENCHMARK(BM_WindowProfile_Unbounded)->Arg(64)->Arg(256);

void BM_WindowProfile_Bounded(benchmark::State& state) {
  const Sequence query =
      MakeShiftedQuery(static_cast<size_t>(state.range(0)), 4, 5.0);
  const Sequence data = MakeSequence(512, 5);
  const double epsilon = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WindowDistanceProfileBounded(query.View(), data.View(), epsilon));
  }
}
BENCHMARK(BM_WindowProfile_Bounded)->Arg(64)->Arg(256);

// Scalar vs dispatched point-sum kernel — the inner loop of every window
// profile / mean distance evaluation — on one window of state.range(0)
// 4-d points. The `simd_level` counter on the dispatched run records which
// implementation actually ran (0 scalar, 1 avx2, 2 neon), so the
// simd_speedup_* summary in BENCH_kernels.json can gate its acceptance bar
// on SIMD being available.
struct PointSumFixture {
  std::vector<double> a, b;

  PointSumFixture(size_t points, size_t dim) : a(points * dim), b(points * dim) {
    Rng rng(21);
    for (double& v : a) v = rng.Uniform();
    for (double& v : b) v = rng.Uniform();
  }
};

void BM_PointSumKernel_Scalar(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const PointSumFixture fixture(points, 4);
  const double inf = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::PointSumBoundedScalar(
        fixture.a.data(), fixture.b.data(), points, 4, inf, nullptr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(points));
}
BENCHMARK(BM_PointSumKernel_Scalar)->Arg(64)->Arg(256);

void BM_PointSumKernel_Simd(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const PointSumFixture fixture(points, 4);
  const double inf = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::PointSumBounded(
        fixture.a.data(), fixture.b.data(), points, 4, inf, nullptr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(points));
  state.counters["simd_level"] =
      static_cast<double>(static_cast<int>(simd::ActiveLevel()));
}
BENCHMARK(BM_PointSumKernel_Simd)->Arg(64)->Arg(256);

void BM_SequenceDistance(benchmark::State& state) {
  const Sequence query = MakeSequence(static_cast<size_t>(state.range(0)),
                                      6);
  const Sequence data = MakeSequence(512, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SequenceDistance(query.View(), data.View()));
  }
}
BENCHMARK(BM_SequenceDistance)->Arg(32)->Arg(128);

}  // namespace
