// Microbenchmarks of the time-series substrate: the three reductions
// (DFT, Haar, PAA), DTW, FRM trail construction, and PCA fitting.

#include <benchmark/benchmark.h>

#include "gen/fractal.h"
#include "gen/walk.h"
#include "ts/dft.h"
#include "ts/dtw.h"
#include "ts/frm.h"
#include "ts/paa.h"
#include "ts/pca.h"
#include "ts/wavelet.h"
#include "util/random.h"

namespace {

using namespace mdseq;

Sequence Walk(size_t length, uint64_t seed) {
  Rng rng(seed);
  return GenerateRandomWalk(length, WalkOptions(), &rng);
}

void BM_DftFeature(benchmark::State& state) {
  const Sequence s = Walk(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DftFeature(s.View(), 4));
  }
}
BENCHMARK(BM_DftFeature)->Arg(64)->Arg(256);

void BM_HaarFeature(benchmark::State& state) {
  const Sequence s = Walk(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaarFeature(s.View(), 4));
  }
}
BENCHMARK(BM_HaarFeature)->Arg(64)->Arg(256);

void BM_PaaFeature(benchmark::State& state) {
  const Sequence s = Walk(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaaFeature(s.View(), 4));
  }
}
BENCHMARK(BM_PaaFeature)->Arg(64)->Arg(256);

void BM_DtwDistance(benchmark::State& state) {
  Rng rng(4);
  FractalOptions options;
  const Sequence a = GenerateFractalSequence(
      static_cast<size_t>(state.range(0)), options, &rng);
  const Sequence b = GenerateFractalSequence(
      static_cast<size_t>(state.range(0)), options, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a.View(), b.View()));
  }
}
BENCHMARK(BM_DtwDistance)->Arg(64)->Arg(256);

void BM_DtwDistanceBanded(benchmark::State& state) {
  Rng rng(5);
  FractalOptions options;
  const Sequence a = GenerateFractalSequence(256, options, &rng);
  const Sequence b = GenerateFractalSequence(256, options, &rng);
  DtwOptions dtw;
  dtw.window = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a.View(), b.View(), dtw));
  }
}
BENCHMARK(BM_DtwDistanceBanded)->Arg(8)->Arg(32);

void BM_FrmAddSeries(benchmark::State& state) {
  const Sequence s = Walk(256, 6);
  for (auto _ : state) {
    FrmIndex index(16, 3);
    index.Add(s);
    benchmark::DoNotOptimize(index.total_mbrs());
  }
}
BENCHMARK(BM_FrmAddSeries);

void BM_PcaFit(benchmark::State& state) {
  Rng rng(7);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back(GenerateFractalSequence(256, FractalOptions(), &rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PcaModel::Fit(corpus, 2));
  }
}
BENCHMARK(BM_PcaFit);

}  // namespace
