// Reproduces Figure 7: pruning rate of Dmbr and Dnorm versus the search
// threshold on the (synthetic) video data set.
//
// Paper expectation: Dmbr prunes 65-91% and Dnorm 73-94%, Dnorm constantly
// 3-10% better, both decreasing as the threshold grows.

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Figure 7: pruning rate (video data)",
      "PR(Dmbr) 0.65-0.91, PR(Dnorm) 0.73-0.94, Dnorm 3-10% above Dmbr, "
      "both decreasing in eps");

  const WorkloadConfig config =
      bench::ConfigFromFlags(flags, DataKind::kVideo, 1408);
  const Workload workload = BuildWorkload(config);
  PrintWorkloadSummary(config, *workload.database, workload.queries);

  SweepOptions options;
  options.measure_time = false;
  options.evaluate_intervals = false;
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, workload.queries, PaperEpsilons(), options);
  PrintSweepRows("Figure 7 (measured):", rows, /*with_time=*/false);
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty() && WriteSweepCsv(csv_path, rows)) {
    std::printf("rows written to %s\n", csv_path.c_str());
  }
  return 0;
}
