// Ablation (substrate): the dimensionality reduction of the pre-processing
// step. The paper leaves the choice open ("DFT or Wavelets can be applied");
// this harness compares the filter selectivity of DFT and Haar features in
// the whole-matching F-index at equal coefficient budgets.

#include <cstdio>
#include <vector>

#include "bench_flags.h"
#include "eval/table.h"
#include "figure_common.h"
#include "gen/walk.h"
#include "ts/whole_matching.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Ablation: DFT vs Haar vs PAA features for the whole-matching filter",
      "all three are correct (no false dismissals); selectivity depends on "
      "how much energy the kept coefficients capture");

  const size_t length = flags.GetSize("length", 128);
  const size_t count = flags.GetSize("count", 2000);
  const size_t queries = flags.GetSize("queries", 20);
  Rng rng(flags.GetSize("seed", 42));

  WalkOptions walk;
  walk.step_stddev = 0.02;
  std::vector<Sequence> corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    corpus.push_back(GenerateRandomWalk(length, walk, &rng));
  }
  std::vector<Sequence> query_set;
  for (size_t q = 0; q < queries; ++q) {
    query_set.push_back(GenerateRandomWalk(length, walk, &rng));
  }

  TextTable table({"feature", "coeffs", "eps", "candidates", "answers",
                   "filter ratio"});
  for (const auto feature : {WholeMatchingIndex::Feature::kDft,
                             WholeMatchingIndex::Feature::kHaar,
                             WholeMatchingIndex::Feature::kPaa}) {
    for (size_t coefficients : {2u, 4u, 8u}) {
      WholeMatchingIndex index(length, coefficients, feature);
      for (const Sequence& s : corpus) index.Add(s);
      for (double epsilon : {0.2, 0.6}) {
        size_t candidates = 0;
        size_t answers = 0;
        for (const Sequence& query : query_set) {
          candidates +=
              index.SearchCandidates(query.View(), epsilon).size();
          answers += index.Search(query.View(), epsilon).size();
        }
        char fc[16], eps[16], cand[16], ans[16], ratio[16];
        std::snprintf(fc, sizeof(fc), "%zu", coefficients);
        std::snprintf(eps, sizeof(eps), "%.1f", epsilon);
        std::snprintf(cand, sizeof(cand), "%.1f",
                      static_cast<double>(candidates) / queries);
        std::snprintf(ans, sizeof(ans), "%.1f",
                      static_cast<double>(answers) / queries);
        std::snprintf(ratio, sizeof(ratio), "%.3f",
                      static_cast<double>(candidates) /
                          (static_cast<double>(count) * queries));
        const char* name = "paa";
        if (feature == WholeMatchingIndex::Feature::kDft) name = "dft";
        if (feature == WholeMatchingIndex::Feature::kHaar) name = "haar";
        table.AddRow({name, fc, eps, cand, ans, ratio});
      }
    }
  }
  std::printf("%zu series of length %zu, %zu queries:\n", count, length,
              queries);
  table.Print();
  return 0;
}
