// Ablation (extension beyond the paper): the composite Phase-3 lower bound.
//
// The paper admits a candidate as soon as one (query MBR, data MBR) pair
// passes the Dnorm test. The alignment-weighted average of per-query-MBR
// minima is also a valid lower bound of D(Q,S) (see SearchOptions) and is
// strictly tighter, so it prunes more false hits with zero false
// dismissals. This harness quantifies the gain.

#include <cstdio>
#include <vector>

#include "bench_flags.h"
#include "core/distance.h"
#include "core/search.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Ablation: composite Dnorm bound (extension)",
      "not in the paper; expected to prune strictly more than the "
      "per-pair test at identical recall");

  for (DataKind kind : {DataKind::kSynthetic, DataKind::kVideo}) {
    WorkloadConfig config = bench::ConfigFromFlags(flags, kind, 400);
    config.num_queries = flags.GetSize("queries", 10);
    const Workload workload = BuildWorkload(config);
    const size_t total = workload.database->num_sequences();

    SimilaritySearch paper(workload.database.get());
    SearchOptions with_composite;
    with_composite.composite_bound = true;
    SimilaritySearch composite(workload.database.get(), with_composite);

    std::printf("%s data (%zu sequences):\n",
                kind == DataKind::kSynthetic ? "synthetic" : "video", total);
    TextTable table({"eps", "PR(pairwise)", "PR(composite)", "matched pw",
                     "matched comp", "relevant"});
    for (double epsilon : PaperEpsilons()) {
      MeanAccumulator pr_paper, pr_composite, m_paper, m_composite,
          relevant_acc;
      for (const Sequence& query : workload.queries) {
        size_t relevant = 0;
        for (size_t id = 0; id < total; ++id) {
          if (SequenceDistance(query.View(),
                               workload.database->sequence(id).View()) <=
              epsilon) {
            ++relevant;
          }
        }
        const size_t paper_matches =
            paper.Search(query.View(), epsilon).matches.size();
        const size_t composite_matches =
            composite.Search(query.View(), epsilon).matches.size();
        pr_paper.Add(PruningRate(total, paper_matches, relevant));
        pr_composite.Add(PruningRate(total, composite_matches, relevant));
        m_paper.Add(static_cast<double>(paper_matches));
        m_composite.Add(static_cast<double>(composite_matches));
        relevant_acc.Add(static_cast<double>(relevant));
      }
      table.AddNumericRow({epsilon, pr_paper.Mean(), pr_composite.Mean(),
                           m_paper.Mean(), m_composite.Mean(),
                           relevant_acc.Mean()},
                          3);
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
