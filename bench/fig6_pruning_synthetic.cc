// Reproduces Figure 6: pruning rate of Dmbr and Dnorm versus the search
// threshold on the synthetic (fractal) data set.
//
// Paper expectation: Dmbr prunes 70-90% and Dnorm 76-93% of prunable
// sequences over eps in [0.05, 0.50], Dnorm constantly 3-10% better, both
// decreasing as the threshold grows.

#include <cstdio>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Figure 6: pruning rate (synthetic data)",
      "PR(Dmbr) 0.70-0.90, PR(Dnorm) 0.76-0.93, Dnorm 3-10% above Dmbr, "
      "both decreasing in eps");

  const WorkloadConfig config =
      bench::ConfigFromFlags(flags, DataKind::kSynthetic, 1600);
  const Workload workload = BuildWorkload(config);
  PrintWorkloadSummary(config, *workload.database, workload.queries);

  SweepOptions options;
  options.measure_time = false;
  options.evaluate_intervals = false;
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, workload.queries, PaperEpsilons(), options);
  PrintSweepRows("Figure 6 (measured):", rows, /*with_time=*/false);
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty() && WriteSweepCsv(csv_path, rows)) {
    std::printf("rows written to %s\n", csv_path.c_str());
  }
  return 0;
}
