// Microbenchmarks of the serving QoS subsystem (src/serve): the result
// cache's hit-vs-miss latency gap through the full engine Submit path,
// the all-miss overhead an enabled cache + tenant classes add over the
// plain engine (the "exact serving pays nothing" guardrail), and the
// approximate tier's speedup-vs-achieved-quality curve across candidate
// budgets (with the certified error bound reported per budget). Supports
// `--json` (see json_main.h); tools/run_benchmarks.sh assembles the
// BENCH_cache.json baseline and guardrails from these.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/search.h"
#include "engine/query_engine.h"
#include "eval/experiment.h"
#include "json_main.h"

namespace {

using namespace mdseq;

// A corpus large enough that Phase 3 sees tens-to-hundreds of candidates
// per query, so the candidate budgets below genuinely bind.
const Workload& ServeWorkload() {
  static const Workload workload = [] {
    WorkloadConfig config;
    config.kind = DataKind::kSynthetic;
    config.num_sequences = 400;
    config.min_length = 56;
    config.max_length = 256;
    config.num_queries = 16;
    config.seed = 1234;
    return BuildWorkload(config);
  }();
  return workload;
}

constexpr double kEpsilon = 0.15;

// One engine round trip served from the cache: the repeat submission of a
// warmed query. Hits complete on the caller thread (no queue hop, no
// search), which is the whole point of the >=10x bar.
void BM_ServeCacheHit(benchmark::State& state) {
  const Workload& workload = ServeWorkload();
  EngineOptions options;
  options.num_threads = 2;
  options.cache_bytes = 16 << 20;
  QueryEngine engine(workload.database.get(), options);
  QueryOptions query_options;
  query_options.epsilon = kEpsilon;
  query_options.verified = true;
  engine.Submit(workload.queries[0], query_options).get();  // warm
  for (auto _ : state) {
    const QueryOutcome outcome =
        engine.Submit(workload.queries[0], query_options).get();
    benchmark::DoNotOptimize(outcome.result.matches.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cache_hits"] = benchmark::Counter(
      static_cast<double>(engine.result_cache()->GetStats().hits));
}

// The same round trip on an all-miss stream (every submission a fresh
// signature via an epsilon nudge): full search plus the cache probe and
// insert — the denominator of the hit speedup.
void BM_ServeCacheMiss(benchmark::State& state) {
  const Workload& workload = ServeWorkload();
  EngineOptions options;
  options.num_threads = 2;
  options.cache_bytes = 16 << 20;
  QueryEngine engine(workload.database.get(), options);
  QueryOptions query_options;
  query_options.verified = true;
  uint64_t round = 0;
  for (auto _ : state) {
    query_options.epsilon = kEpsilon + 1e-9 * static_cast<double>(++round);
    const QueryOutcome outcome =
        engine.Submit(workload.queries[0], query_options).get();
    benchmark::DoNotOptimize(outcome.result.matches.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cache_insertions"] = benchmark::Counter(
      static_cast<double>(engine.result_cache()->GetStats().insertions));
}

// One full workload batch through the engine, QoS subsystem disabled
// (default options): the baseline the <=5% overhead guardrail compares
// against.
void BM_ServeBatchDisabled(benchmark::State& state) {
  const Workload& workload = ServeWorkload();
  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(workload.database.get(), options);
  QueryOptions query_options;
  query_options.verified = true;
  uint64_t round = 0;
  for (auto _ : state) {
    query_options.epsilon = kEpsilon + 1e-9 * static_cast<double>(++round);
    auto futures = engine.SubmitBatch(workload.queries, query_options);
    for (auto& f : futures) benchmark::DoNotOptimize(f.get().status);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.queries.size()));
}

// The same batch with the cache and two tenant classes enabled on an
// all-miss stream (per-round epsilon nudge, so every query pays the
// probe, the tenant-queue pick, and the insert). Must stay within 5% of
// the disabled baseline.
void BM_ServeBatchEnabledMiss(benchmark::State& state) {
  const Workload& workload = ServeWorkload();
  EngineOptions options;
  options.num_threads = 2;
  options.cache_bytes = 16 << 20;
  options.tenant_classes = {{"gold", 2}, {"bronze", 1}};
  QueryEngine engine(workload.database.get(), options);
  QueryOptions query_options;
  query_options.verified = true;
  uint64_t round = 0;
  for (auto _ : state) {
    query_options.epsilon = kEpsilon + 1e-9 * static_cast<double>(++round);
    auto futures = engine.SubmitBatch(workload.queries, query_options);
    for (auto& f : futures) benchmark::DoNotOptimize(f.get().status);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.queries.size()));
}

// The approximate tier, straight through the search (no engine noise):
// one iteration runs the whole query set under a Phase-3 candidate budget
// of range(0) (0 = exact). Reported counters are the achieved quality —
// mean certified error bound and mean skipped candidates — so the
// baseline file carries the speedup *and* the quality it bought.
void BM_ServeApprox(benchmark::State& state) {
  const Workload& workload = ServeWorkload();
  SearchOptions options;
  options.max_candidates = static_cast<uint64_t>(state.range(0));
  const SimilaritySearch search(workload.database.get(), options);
  double certified_sum = 0.0;
  double skipped_sum = 0.0;
  for (auto _ : state) {
    certified_sum = 0.0;
    skipped_sum = 0.0;
    for (const Sequence& query : workload.queries) {
      const SearchResult result =
          search.SearchVerified(query.View(), kEpsilon);
      certified_sum += result.stats.approx_certified_epsilon;
      skipped_sum +=
          static_cast<double>(result.stats.approx_candidates_skipped);
      benchmark::DoNotOptimize(result.matches.data());
    }
  }
  const double queries = static_cast<double>(workload.queries.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.queries.size()));
  state.counters["certified_epsilon"] =
      benchmark::Counter(certified_sum / queries);
  state.counters["skipped_per_query"] =
      benchmark::Counter(skipped_sum / queries);
}

BENCHMARK(BM_ServeCacheHit);
BENCHMARK(BM_ServeCacheMiss);
BENCHMARK(BM_ServeBatchDisabled);
BENCHMARK(BM_ServeBatchEnabledMiss);
BENCHMARK(BM_ServeApprox)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
