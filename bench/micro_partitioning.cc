// Microbenchmarks of the MCOST partitioning algorithm.

#include <benchmark/benchmark.h>

#include "core/partitioning.h"
#include "gen/fractal.h"
#include "gen/video.h"
#include "util/random.h"

namespace {

using namespace mdseq;

void BM_PartitionFractal(benchmark::State& state) {
  Rng rng(1);
  const Sequence s = GenerateFractalSequence(
      static_cast<size_t>(state.range(0)), FractalOptions(), &rng);
  const PartitioningOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionSequence(s.View(), options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PartitionFractal)->Arg(56)->Arg(512);

void BM_PartitionVideo(benchmark::State& state) {
  Rng rng(2);
  const Sequence s = GenerateVideoSequence(
      static_cast<size_t>(state.range(0)), VideoOptions(), &rng);
  const PartitioningOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionSequence(s.View(), options));
  }
}
BENCHMARK(BM_PartitionVideo)->Arg(512);

void BM_PartitionAdditiveCost(benchmark::State& state) {
  Rng rng(3);
  const Sequence s = GenerateFractalSequence(512, FractalOptions(), &rng);
  PartitioningOptions options;
  options.cost_model = PartitioningOptions::CostModel::kAdditive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionSequence(s.View(), options));
  }
}
BENCHMARK(BM_PartitionAdditiveCost);

void BM_PartitionFixed(benchmark::State& state) {
  Rng rng(4);
  const Sequence s = GenerateFractalSequence(512, FractalOptions(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionFixed(s.View(), 32));
  }
}
BENCHMARK(BM_PartitionFixed);

}  // namespace
