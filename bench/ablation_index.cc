// Ablation: R*-tree versus flat page scan as the MBR index.
//
// Both backends return identical Phase-2 candidates (the Dmbr test is the
// same); the R*-tree touches far fewer pages, which is the paper's reason
// for indexing the MBRs "using the R-tree or its variants".

#include <cstdio>
#include <vector>

#include "bench_flags.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Ablation: spatial index backend (R*-tree vs linear page scan)",
      "identical candidates; the tree needs a fraction of the page "
      "accesses at selective thresholds");

  TextTable table({"backend", "eps", "cand", "nodes", "search ms"});
  auto backend_name = [](DatabaseOptions::IndexKind kind) {
    switch (kind) {
      case DatabaseOptions::IndexKind::kRStarTree:
        return "rstar";
      case DatabaseOptions::IndexKind::kGuttmanQuadratic:
        return "guttman-q";
      case DatabaseOptions::IndexKind::kGuttmanLinear:
        return "guttman-l";
      case DatabaseOptions::IndexKind::kLinear:
        return "linear";
    }
    return "?";
  };
  for (const auto kind : {DatabaseOptions::IndexKind::kRStarTree,
                          DatabaseOptions::IndexKind::kGuttmanQuadratic,
                          DatabaseOptions::IndexKind::kGuttmanLinear,
                          DatabaseOptions::IndexKind::kLinear}) {
    WorkloadConfig config =
        bench::ConfigFromFlags(flags, DataKind::kSynthetic, 400);
    config.num_queries = flags.GetSize("queries", 10);
    config.database.index_kind = kind;
    const Workload workload = BuildWorkload(config);
    SweepOptions options;
    options.measure_time = true;
    options.evaluate_intervals = false;
    const std::vector<SweepRow> rows = RunThresholdSweep(
        *workload.database, workload.queries, {0.05, 0.20, 0.50}, options);
    for (const SweepRow& row : rows) {
      char eps[16], cand[16], nodes[16], ms[16];
      std::snprintf(eps, sizeof(eps), "%.2f", row.epsilon);
      std::snprintf(cand, sizeof(cand), "%.1f", row.avg_candidates);
      std::snprintf(nodes, sizeof(nodes), "%.0f", row.avg_node_accesses);
      std::snprintf(ms, sizeof(ms), "%.3f", row.avg_search_ms);
      table.AddRow({backend_name(kind), eps, cand, nodes, ms});
    }
  }
  table.Print();
  return 0;
}
