// Reproduces Figure 9: pruning efficiency and recall of the estimated
// solution interval on video data.
//
// Paper expectation: PR_SI around 67-94% (better than synthetic, thanks to
// shot clustering) and recall 98-100%.

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Figure 9: solution-interval efficiency (video data)",
      "PR_SI 0.67-0.94, Recall 0.98-1.00");

  const WorkloadConfig config =
      bench::ConfigFromFlags(flags, DataKind::kVideo, 1408);
  const Workload workload = BuildWorkload(config);
  PrintWorkloadSummary(config, *workload.database, workload.queries);

  SweepOptions options;
  options.measure_time = false;
  options.evaluate_intervals = true;
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, workload.queries, PaperEpsilons(), options);
  PrintSweepRows("Figure 9 (measured):", rows, /*with_time=*/false);
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty() && WriteSweepCsv(csv_path, rows)) {
    std::printf("rows written to %s\n", csv_path.c_str());
  }
  return 0;
}
