#ifndef MDSEQ_BENCH_BENCH_FLAGS_H_
#define MDSEQ_BENCH_BENCH_FLAGS_H_

#include "util/flags.h"

namespace mdseq::bench {

/// The harness flag parser; see `mdseq::Flags`.
using Flags = ::mdseq::Flags;

}  // namespace mdseq::bench

#endif  // MDSEQ_BENCH_BENCH_FLAGS_H_
