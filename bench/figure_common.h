#ifndef MDSEQ_BENCH_FIGURE_COMMON_H_
#define MDSEQ_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "eval/experiment.h"

namespace mdseq::bench {

/// Builds the workload configuration every figure harness shares, honoring
/// the rescaling flags `--sequences`, `--queries`, `--min_len`, `--max_len`,
/// `--qmin`, `--qmax`, `--seed`.
inline WorkloadConfig ConfigFromFlags(const Flags& flags, DataKind kind,
                                      size_t default_sequences) {
  WorkloadConfig config;
  config.kind = kind;
  config.num_sequences = flags.GetSize("sequences", default_sequences);
  config.min_length = flags.GetSize("min_len", 56);
  config.max_length = flags.GetSize("max_len", 512);
  config.num_queries = flags.GetSize("queries", 20);
  config.query.min_length = flags.GetSize("qmin", 24);
  config.query.max_length = flags.GetSize("qmax", 64);
  config.seed = flags.GetSize("seed", 42);
  return config;
}

/// Prints the paper-vs-measured banner used by every figure harness.
inline void PrintPaperBanner(const std::string& figure,
                             const std::string& paper_expectation) {
  std::printf("=== %s ===\n", figure.c_str());
  std::printf("Paper reports: %s\n\n", paper_expectation.c_str());
}

}  // namespace mdseq::bench

#endif  // MDSEQ_BENCH_FIGURE_COMMON_H_
