// Ablation: maximum points per MBR (the partitioning algorithm's `max`
// parameter) and, as the degenerate case, fixed-length partitioning.
//
// A huge side growth makes the marginal cost monotonically decreasing, so
// the partitioner degenerates into fixed-length pieces of exactly
// `max_points` — that row quantifies the value of the adaptive MCOST rule.

#include <cstdio>
#include <vector>

#include "bench_flags.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Ablation: max points per MBR / fixed-length partitioning",
      "adaptive MCOST partitioning should beat fixed-length pieces at equal "
      "granularity");

  const double eval_eps = flags.GetDouble("eps", 0.20);
  TextTable table({"partitioner", "max_pts", "MBRs/seq", "PR(Dmbr)",
                   "PR(Dnorm)", "PR_SI", "recall"});

  auto run = [&](const char* label, size_t max_points, double growth) {
    WorkloadConfig config =
        bench::ConfigFromFlags(flags, DataKind::kVideo, 300);
    config.num_queries = flags.GetSize("queries", 10);
    config.database.partitioning.max_points = max_points;
    config.database.partitioning.side_growth = growth;
    const Workload workload = BuildWorkload(config);
    SweepOptions options;
    options.measure_time = false;
    const SweepRow row = RunThresholdSweep(*workload.database,
                                           workload.queries, {eval_eps},
                                           options)[0];
    char max_str[16], mbrs[16], pr1[16], pr2[16], si[16], rc[16];
    std::snprintf(max_str, sizeof(max_str), "%zu", max_points);
    std::snprintf(mbrs, sizeof(mbrs), "%.1f",
                  static_cast<double>(workload.database->total_mbrs()) /
                      workload.database->num_sequences());
    std::snprintf(pr1, sizeof(pr1), "%.3f", row.pr_dmbr);
    std::snprintf(pr2, sizeof(pr2), "%.3f", row.pr_dnorm);
    std::snprintf(si, sizeof(si), "%.3f", row.pr_si);
    std::snprintf(rc, sizeof(rc), "%.3f", row.recall);
    table.AddRow({label, max_str, mbrs, pr1, pr2, si, rc});
  };

  for (size_t max_points : {8u, 16u, 32u, 64u, 128u}) {
    run("mcost", max_points, 0.3);
  }
  for (size_t max_points : {16u, 64u}) {
    run("fixed", max_points, 1e6);  // degenerate MCOST = fixed pieces
  }

  std::printf("At eps = %.2f:\n", eval_eps);
  table.Print();
  return 0;
}
