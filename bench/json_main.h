#ifndef MDSEQ_BENCH_JSON_MAIN_H_
#define MDSEQ_BENCH_JSON_MAIN_H_

// Drop-in replacement for benchmark_main that also accepts a plain
// `--json` flag (shorthand for --benchmark_format=json), so
// tools/run_benchmarks.sh can collect machine-readable output. Include
// from exactly one translation unit of a benchmark binary linked against
// benchmark::benchmark (not benchmark::benchmark_main).

#include <cstring>
#include <vector>

#include <benchmark/benchmark.h>

int main(int argc, char** argv) {
  char json_flag[] = "--benchmark_format=json";
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    args.push_back(std::strcmp(argv[i], "--json") == 0 ? json_flag : argv[i]);
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#endif  // MDSEQ_BENCH_JSON_MAIN_H_
