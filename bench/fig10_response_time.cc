// Reproduces Figure 10: average response time of the proposed method
// relative to the sequential scan, on both data sets.
//
// Paper expectation: 22-28x faster on synthetic data and 16-23x on video
// data. Absolute numbers differ from the paper's 1999 hardware; the ratio
// is the quantity compared.

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mdseq;
  const bench::Flags flags(argc, argv);
  bench::PrintPaperBanner(
      "Figure 10: response time ratio (scan / proposed method)",
      "22-28x on synthetic data, 16-23x on video data");

  SweepOptions options;
  options.measure_time = true;
  options.evaluate_intervals = true;  // scan and method both produce SIs

  {
    const WorkloadConfig config =
        bench::ConfigFromFlags(flags, DataKind::kSynthetic, 1600);
    const Workload workload = BuildWorkload(config);
    PrintWorkloadSummary(config, *workload.database, workload.queries);
    const std::vector<SweepRow> rows = RunThresholdSweep(
        *workload.database, workload.queries, PaperEpsilons(), options);
    PrintSweepRows("Figure 10, synthetic (measured):", rows,
                   /*with_time=*/true);
    PrintPhaseBreakdown("Figure 10, synthetic phase breakdown:", rows);
  }
  {
    const WorkloadConfig config =
        bench::ConfigFromFlags(flags, DataKind::kVideo, 1408);
    const Workload workload = BuildWorkload(config);
    PrintWorkloadSummary(config, *workload.database, workload.queries);
    const std::vector<SweepRow> rows = RunThresholdSweep(
        *workload.database, workload.queries, PaperEpsilons(), options);
    PrintSweepRows("Figure 10, video (measured):", rows, /*with_time=*/true);
    PrintPhaseBreakdown("Figure 10, video phase breakdown:", rows);
  }
  return 0;
}
