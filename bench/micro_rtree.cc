// Microbenchmarks of the R*-tree substrate: insertion, bulk loading, and
// range queries against the flat-scan baseline. Supports `--json` (see
// json_main.h); the PerQuery/Batch pair feeds tools/run_benchmarks.sh.

#include <benchmark/benchmark.h>

#include "index/linear_index.h"
#include "index/rstar_tree.h"
#include "json_main.h"
#include "util/random.h"
#include "util/simd.h"

namespace {

using namespace mdseq;

std::vector<IndexEntry> MakeEntries(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<IndexEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Point low{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    Point high = low;
    for (double& v : high) v += 0.05 * rng.Uniform();
    entries.push_back(IndexEntry{Mbr(low, high), i});
  }
  return entries;
}

void BM_RStarInsert(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    RStarTree tree(3);
    for (const IndexEntry& e : entries) tree.Insert(e.mbr, e.value);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RStarInsert)->Arg(1000)->Arg(10000);

void BM_RStarBulkLoad(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto copy = entries;
    RStarTree tree = RStarTree::BulkLoad(3, std::move(copy));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RStarBulkLoad)->Arg(1000)->Arg(10000);

void BM_RStarRangeSearch(benchmark::State& state) {
  const auto entries = MakeEntries(20000, 3);
  RStarTree tree = RStarTree::BulkLoad(3, entries);
  Rng rng(4);
  const double epsilon = static_cast<double>(state.range(0)) / 100.0;
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    const Mbr query = Mbr::FromPoint(
        Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    tree.RangeSearch(query, epsilon, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RStarRangeSearch)->Arg(1)->Arg(10)->Arg(30);

// Multi-probe range search, as Phase 2 issues it: state.range(0) clustered
// probes (the MBRs of one partitioned query) against a packed tree. The
// per-query variant descends once per probe; the batch variant descends
// once for all of them. `node_visits` counts the nodes each strategy
// touched per iteration — the paper's disk-access proxy.
std::vector<Mbr> MakeClusteredProbes(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Mbr> probes;
  const Point anchor{rng.Uniform() * 0.5, rng.Uniform() * 0.5,
                     rng.Uniform() * 0.5};
  for (size_t i = 0; i < count; ++i) {
    Point low = anchor;
    for (double& v : low) v += 0.03 * rng.Uniform() * static_cast<double>(i);
    Point high = low;
    for (double& v : high) v += 0.05;
    probes.emplace_back(low, high);
  }
  return probes;
}

void BM_RStarMultiProbe_PerQuery(benchmark::State& state) {
  const auto entries = MakeEntries(20000, 3);
  RStarTree tree = RStarTree::BulkLoad(3, entries);
  const auto probes =
      MakeClusteredProbes(static_cast<size_t>(state.range(0)), 5);
  const double epsilon = 0.05;
  uint64_t visits = 0, iterations = 0;
  std::vector<uint64_t> out;
  for (auto _ : state) {
    for (const Mbr& probe : probes) {
      out.clear();
      visits += tree.RangeSearch(probe, epsilon, &out);
      benchmark::DoNotOptimize(out.size());
    }
    ++iterations;
  }
  state.counters["node_visits"] =
      static_cast<double>(visits) / static_cast<double>(iterations);
}
BENCHMARK(BM_RStarMultiProbe_PerQuery)->Arg(4)->Arg(8)->Arg(16);

void BM_RStarMultiProbe_Batch(benchmark::State& state) {
  const auto entries = MakeEntries(20000, 3);
  RStarTree tree = RStarTree::BulkLoad(3, entries);
  const auto probes =
      MakeClusteredProbes(static_cast<size_t>(state.range(0)), 5);
  const double epsilon = 0.05;
  uint64_t visits = 0, iterations = 0;
  std::vector<std::vector<SpatialIndex::BatchHit>> out;
  for (auto _ : state) {
    visits += tree.RangeSearchBatch(probes, epsilon, &out);
    benchmark::DoNotOptimize(out.size());
    ++iterations;
  }
  state.counters["node_visits"] =
      static_cast<double>(visits) / static_cast<double>(iterations);
}
BENCHMARK(BM_RStarMultiProbe_Batch)->Arg(4)->Arg(8)->Arg(16);

// Scalar vs dispatched Dmbr kernel (batched MINDIST over a dim-major SoA
// rectangle set, as the batched node probes issue it): state.range(0)
// 4-d rectangles against one query box. The `simd_level` counter on the
// dispatched run records which implementation actually ran (0 scalar,
// 1 avx2, 2 neon).
struct MinDist2Fixture {
  size_t n;
  size_t dim = 4;
  std::vector<double> qlo, qhi, lo, hi, out;

  explicit MinDist2Fixture(size_t count)
      : n(count), qlo(dim), qhi(dim), lo(dim * n), hi(dim * n), out(n) {
    Rng rng(31);
    for (size_t k = 0; k < dim; ++k) {
      qlo[k] = rng.Uniform();
      qhi[k] = qlo[k] + 0.2 * rng.Uniform();
      for (size_t i = 0; i < n; ++i) {
        lo[k * n + i] = 2.0 * rng.Uniform() - 0.5;
        hi[k * n + i] = lo[k * n + i] + 0.1 * rng.Uniform();
      }
    }
  }
};

void BM_MinDist2Kernel_Scalar(benchmark::State& state) {
  MinDist2Fixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    simd::MinDist2BatchScalar(f.qlo.data(), f.qhi.data(), f.lo.data(),
                              f.hi.data(), f.n, f.dim, f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.n));
}
BENCHMARK(BM_MinDist2Kernel_Scalar)->Arg(256)->Arg(1024);

void BM_MinDist2Kernel_Simd(benchmark::State& state) {
  MinDist2Fixture f(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    simd::MinDist2Batch(f.qlo.data(), f.qhi.data(), f.lo.data(),
                        f.hi.data(), f.n, f.dim, f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.n));
  state.counters["simd_level"] =
      static_cast<double>(static_cast<int>(simd::ActiveLevel()));
}
BENCHMARK(BM_MinDist2Kernel_Simd)->Arg(256)->Arg(1024);

void BM_LinearRangeSearch(benchmark::State& state) {
  const auto entries = MakeEntries(20000, 3);
  LinearIndex index;
  for (const IndexEntry& e : entries) index.Insert(e.mbr, e.value);
  Rng rng(4);
  const double epsilon = static_cast<double>(state.range(0)) / 100.0;
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    const Mbr query = Mbr::FromPoint(
        Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    index.RangeSearch(query, epsilon, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_LinearRangeSearch)->Arg(1)->Arg(10)->Arg(30);

}  // namespace
