// Microbenchmarks of the R*-tree substrate: insertion, bulk loading, and
// range queries against the flat-scan baseline.

#include <benchmark/benchmark.h>

#include "index/linear_index.h"
#include "index/rstar_tree.h"
#include "util/random.h"

namespace {

using namespace mdseq;

std::vector<IndexEntry> MakeEntries(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<IndexEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Point low{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    Point high = low;
    for (double& v : high) v += 0.05 * rng.Uniform();
    entries.push_back(IndexEntry{Mbr(low, high), i});
  }
  return entries;
}

void BM_RStarInsert(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    RStarTree tree(3);
    for (const IndexEntry& e : entries) tree.Insert(e.mbr, e.value);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RStarInsert)->Arg(1000)->Arg(10000);

void BM_RStarBulkLoad(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto copy = entries;
    RStarTree tree = RStarTree::BulkLoad(3, std::move(copy));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RStarBulkLoad)->Arg(1000)->Arg(10000);

void BM_RStarRangeSearch(benchmark::State& state) {
  const auto entries = MakeEntries(20000, 3);
  RStarTree tree = RStarTree::BulkLoad(3, entries);
  Rng rng(4);
  const double epsilon = static_cast<double>(state.range(0)) / 100.0;
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    const Mbr query = Mbr::FromPoint(
        Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    tree.RangeSearch(query, epsilon, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RStarRangeSearch)->Arg(1)->Arg(10)->Arg(30);

void BM_LinearRangeSearch(benchmark::State& state) {
  const auto entries = MakeEntries(20000, 3);
  LinearIndex index;
  for (const IndexEntry& e : entries) index.Insert(e.mbr, e.value);
  Rng rng(4);
  const double epsilon = static_cast<double>(state.range(0)) / 100.0;
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    const Mbr query = Mbr::FromPoint(
        Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    index.RangeSearch(query, epsilon, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_LinearRangeSearch)->Arg(1)->Arg(10)->Arg(30);

}  // namespace
